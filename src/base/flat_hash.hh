/**
 * @file
 * Open-addressing hash map for hot-path address/key lookups.
 *
 * The standard library's node-based unordered_map costs one allocation
 * per element and a pointer chase per probe; the simulators' inner
 * loops (ARB address tracking, MDST/MDPT pair indexes, dependence
 * oracle construction) do millions of lookups on small keys, where an
 * open-addressed table with linear probing is several times faster.
 *
 * Determinism by construction: this container exposes NO iteration
 * API (no begin/end, no visitation), so probe order and rehash layout
 * can never leak into simulation state or report rows -- the property
 * the mdp-lint `unordered-iter` rule protects.  Callers that need an
 * ordered read-out must maintain their own key list.
 *
 * Deletion uses backward-shift (no tombstones), so lookup cost stays
 * bounded by the current load factor regardless of churn.
 */

#ifndef MDP_BASE_FLAT_HASH_HH
#define MDP_BASE_FLAT_HASH_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/random.hh"

namespace mdp
{

/**
 * Open-addressed (linear probing, power-of-two capacity) map from an
 * integral key to a value.  Keys are scrambled with the splitmix64
 * finalizer, so sequential PCs/addresses do not cluster.
 */
template <typename Key, typename T>
class FlatHashMap
{
  public:
    FlatHashMap() = default;

    size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Pre-size for @p n elements without exceeding the load factor. */
    void
    reserve(size_t n)
    {
        size_t needed = slotsFor(n);
        if (needed > slots.size())
            rehash(needed);
    }

    void
    clear()
    {
        slots.clear();
        used.clear();
        count = 0;
    }

    /** @return pointer to the mapped value, or nullptr. */
    T *
    find(Key k)
    {
        if (count == 0)
            return nullptr;
        size_t i = probe(k);
        return used[i] ? &slots[i].value : nullptr;
    }

    const T *
    find(Key k) const
    {
        if (count == 0)
            return nullptr;
        size_t i = probe(k);
        return used[i] ? &slots[i].value : nullptr;
    }

    bool contains(Key k) const { return find(k) != nullptr; }

    /** Find-or-default-construct, as std::unordered_map::operator[]. */
    T &
    operator[](Key k)
    {
        if (slots.empty() || (count + 1) * 4 > slots.size() * 3)
            rehash(slots.empty() ? kMinSlots : slots.size() * 2);
        size_t i = probe(k);
        if (!used[i]) {
            used[i] = 1;
            slots[i].key = k;
            slots[i].value = T{};
            ++count;
        }
        return slots[i].value;
    }

    /** Remove a key.  @return true when it was present. */
    bool
    erase(Key k)
    {
        if (count == 0)
            return false;
        size_t i = probe(k);
        if (!used[i])
            return false;
        // Backward-shift deletion: close the hole by sliding back every
        // subsequent probe-chain element that is not already at home.
        used[i] = 0;
        slots[i] = Slot{};
        --count;
        size_t mask = slots.size() - 1;
        size_t j = i;
        while (true) {
            j = (j + 1) & mask;
            if (!used[j])
                break;
            size_t home = indexOf(slots[j].key);
            // Move j into the hole unless its home lies in (i, j]
            // (cyclically), i.e. unless the shift would move it before
            // its own probe start.
            bool home_in_gap = (j > i) ? (home > i && home <= j)
                                       : (home > i || home <= j);
            if (!home_in_gap) {
                slots[i] = std::move(slots[j]);
                used[i] = 1;
                used[j] = 0;
                slots[j] = Slot{};
                i = j;
            }
        }
        return true;
    }

  private:
    struct Slot
    {
        Key key{};
        T value{};
    };

    static constexpr size_t kMinSlots = 16;

    static size_t
    slotsFor(size_t n)
    {
        size_t s = kMinSlots;
        while (n * 4 > s * 3)
            s *= 2;
        return s;
    }

    size_t
    indexOf(Key k) const
    {
        return static_cast<size_t>(mix64(static_cast<uint64_t>(k))) &
               (slots.size() - 1);
    }

    /** First slot holding @p k, or the first empty slot of its chain. */
    size_t
    probe(Key k) const
    {
        size_t mask = slots.size() - 1;
        size_t i = indexOf(k);
        while (used[i] && slots[i].key != k)
            i = (i + 1) & mask;
        return i;
    }

    void
    rehash(size_t new_slots)
    {
        std::vector<Slot> old_slots = std::move(slots);
        std::vector<uint8_t> old_used = std::move(used);
        slots.assign(new_slots, Slot{});
        used.assign(new_slots, 0);
        for (size_t i = 0; i < old_slots.size(); ++i) {
            if (!old_used[i])
                continue;
            size_t j = probe(old_slots[i].key);
            slots[j] = std::move(old_slots[i]);
            used[j] = 1;
        }
    }

    std::vector<Slot> slots;
    std::vector<uint8_t> used;
    size_t count = 0;
};

} // namespace mdp

#endif // MDP_BASE_FLAT_HASH_HH
