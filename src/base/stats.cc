#include "base/stats.hh"

#include <iomanip>

namespace mdp
{

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[name, value] : entries) {
        os << prefix << std::left << std::setw(40) << name << " "
           << std::right << std::setw(16) << std::setprecision(6)
           << value << "\n";
    }
}

} // namespace mdp
