/**
 * @file
 * Environment-variable configuration knobs shared by tests, examples
 * and benches.
 */

#ifndef MDP_BASE_ENV_HH
#define MDP_BASE_ENV_HH

#include <string>

namespace mdp
{

/** Read a double env var with a default; malformed values fall back. */
double envDouble(const char *name, double def);

/** Read an integer env var with a default. */
long envLong(const char *name, long def);

/** Read a string env var with a default. */
std::string envString(const char *name, const std::string &def);

/**
 * Global trace-length scale factor (env MDP_SCALE, default 1.0).
 * Workload generators multiply their iteration counts by this; the
 * benches honor it so CI can run quickly and a full run can be longer.
 */
double traceScale();

/**
 * Process-wide kill switch for event-driven fast-forward (env
 * MDP_TICK_REFERENCE=1): the timing models fall back to the naive
 * tick-every-cycle reference loop.  Results must be byte-identical in
 * both modes; CI runs the bench suite under both to prove it.  Read
 * once and cached, so flipping the variable mid-process has no effect.
 */
bool tickReference();

/**
 * Process-wide kill switch for the per-PE event frontier (env
 * MDP_FRONTIER_REFERENCE=1): the Multiscalar model falls back to the
 * global-scan scheduling path (all stages stepped every cycle, jump
 * targets from the full nextInterestingCycle() scan).  Results must be
 * byte-identical in both modes; CI diffs a 1024-PE run under both to
 * prove it.  Read once and cached, like tickReference().
 */
bool frontierReference();

} // namespace mdp

#endif // MDP_BASE_ENV_HH
