/**
 * @file
 * Branch-light compare-mask kernels for the dense per-cycle loops of
 * the timing models, operating on the packed lanes of
 * base/soa_lanes.hh (and on the ARB's per-address load lanes).
 *
 * Every kernel has two implementations with bit-identical results: a
 * portable scalar loop (the semantic reference, compiled and tested
 * everywhere) and an AVX2 path selected at runtime when the CPU
 * supports it.  Unsigned comparisons in the AVX2 paths use the
 * sign-flip trick, so there is no value-range precondition; results
 * are exact for the full uint64_t/uint32_t domain.
 *
 * Dispatch is process-wide: MDP_SIMD=scalar forces the reference
 * path, MDP_SIMD=avx2 requests the vector path (falling back to
 * scalar when unsupported), and the default `auto` picks the best
 * supported level.  Both paths produce identical results by
 * construction; CI runs the bench byte-identity sweep under both.
 */

#ifndef MDP_BASE_SIMD_KERNELS_HH
#define MDP_BASE_SIMD_KERNELS_HH

#include <cstddef>
#include <cstdint>

namespace mdp
{
namespace simd
{

/** Implementation level of the dense-loop kernels. */
enum class SimdLevel
{
    Scalar,
    Avx2,
};

/** The level the kernels currently dispatch to (env + CPU detection,
 *  or the last forceLevel() override). */
SimdLevel activeLevel();

/** Human-readable name ("scalar" / "avx2"). */
const char *levelName(SimdLevel level);

/** True when the running CPU can execute the AVX2 path. */
bool avx2Supported();

/**
 * Test hook: pin the dispatch level for the rest of the process (the
 * differential tests run every kernel under both levels and compare).
 * Forcing Avx2 on a CPU without AVX2 support is ignored.
 */
void forceLevel(SimdLevel level);

/** 32-bit "none" sentinel (mirrors trace/microop.hh kNoSeq, which
 *  base cannot include). */
constexpr uint32_t kNone32 = UINT32_MAX;

namespace detail
{
/** Out-of-line dispatched implementations for long spans; the public
 *  kernels below inline a scalar loop for short ones. */
uint64_t minPendingDoneLarge(const uint64_t *done, const uint16_t *flags,
                             size_t begin, size_t end, uint16_t required,
                             uint64_t cycle);
size_t nextReadyCandidateLarge(const uint16_t *flags, size_t begin,
                               size_t end, uint16_t skip);
uint32_t maxStoreBelowLarge(const uint32_t *seqs, size_t n,
                            uint32_t bound);
uint32_t earliestViolatorLarge(const uint32_t *seqs,
                               const uint32_t *versions,
                               const uint32_t *tasks, size_t n,
                               uint32_t store, uint32_t store_task);
} // namespace detail

/** Spans at or below these element counts take the inline scalar loop
 *  rather than the dispatched vector path: the per-call level load,
 *  call, and AVX2 prologue cost more than a vector step saves on a
 *  handful of lanes, and the models' wakeup hops over a stage window
 *  are usually exactly that.  Long spans (the fast-forward scans, the
 *  micro kernels' 32K-lane arrays) still vectorize.  Both paths are
 *  exact over machine integers, so the cutover cannot change any
 *  observable; the differential tests cross it in both directions. */
constexpr size_t kInlineSpan64 = 16;   // uint64_t lanes, 4 per step
constexpr size_t kInlineSpan32 = 32;   // uint32_t lanes, 8 per step
constexpr size_t kInlineSpan16 = 64;   // uint16_t lanes, 16 per step

/**
 * Completion scan: the minimum done[i] over i in [begin, end) with
 * (flags[i] & required) != 0 and done[i] > cycle; UINT64_MAX when no
 * lane qualifies.  This is the fast-forward "next completion" probe
 * of both timing models.
 */
inline uint64_t
minPendingDone(const uint64_t *done, const uint16_t *flags,
               size_t begin, size_t end, uint16_t required,
               uint64_t cycle)
{
    if (end <= begin + kInlineSpan64) {
        uint64_t best = UINT64_MAX;
        for (size_t i = begin; i < end; ++i) {
            if ((flags[i] & required) && done[i] > cycle &&
                done[i] < best) {
                best = done[i];
            }
        }
        return best;
    }
    return detail::minPendingDoneLarge(done, flags, begin, end,
                                       required, cycle);
}

/**
 * Wakeup-match scan: the first index i in [begin, end) with
 * (flags[i] & skip) == 0, or end when every lane is flagged.  The
 * issue loops use it to hop over issued/blocked runs without
 * touching the completion lane.
 */
inline size_t
nextReadyCandidate(const uint16_t *flags, size_t begin, size_t end,
                   uint16_t skip)
{
    if (end <= begin + kInlineSpan16) {
        for (size_t i = begin; i < end; ++i) {
            if (!(flags[i] & skip))
                return i;
        }
        return end;
    }
    return detail::nextReadyCandidateLarge(flags, begin, end, skip);
}

/**
 * ARB version probe: the maximum seqs[i] strictly below @p bound over
 * i in [0, n), or kNone32 when no lane qualifies (the newest
 * in-flight store older than a load).
 */
inline uint32_t
maxStoreBelow(const uint32_t *seqs, size_t n, uint32_t bound)
{
    if (n <= kInlineSpan32) {
        uint32_t best = kNone32;
        bool found = false;
        for (size_t i = 0; i < n; ++i) {
            if (seqs[i] < bound && (!found || seqs[i] > best)) {
                best = seqs[i];
                found = true;
            }
        }
        return found ? best : kNone32;
    }
    return detail::maxStoreBelowLarge(seqs, n, bound);
}

/**
 * ARB violation probe over the per-address load lanes: the minimum
 * seqs[i] with seqs[i] > store, tasks[i] > store_task, and
 * (versions[i] == kNone32 or versions[i] < store); kNone32 when the
 * store violated nothing.
 */
inline uint32_t
earliestViolator(const uint32_t *seqs, const uint32_t *versions,
                 const uint32_t *tasks, size_t n, uint32_t store,
                 uint32_t store_task)
{
    if (n <= kInlineSpan32) {
        uint32_t best = kNone32;
        for (size_t i = 0; i < n; ++i) {
            if (seqs[i] > store && tasks[i] > store_task &&
                (versions[i] == kNone32 || versions[i] < store) &&
                seqs[i] < best) {
                best = seqs[i];
            }
        }
        return best;
    }
    return detail::earliestViolatorLarge(seqs, versions, tasks, n,
                                         store, store_task);
}

} // namespace simd
} // namespace mdp

#endif // MDP_BASE_SIMD_KERNELS_HH
