#include "multiscalar/arb.hh"

#include <algorithm>

namespace mdp
{

SeqNum
Arb::loadExecuted(Addr addr, SeqNum load, uint32_t load_task)
{
    SeqNum version = kNoSeq;
    auto cit = committedVersion.find(addr);
    if (cit != committedVersion.end())
        version = cit->second;

    auto sit = inflightStores.find(addr);
    if (sit != inflightStores.end()) {
        for (SeqNum ss : sit->second) {
            if (ss < load && (version == kNoSeq || ss > version))
                version = ss;
        }
    }

    loads[addr].push_back({load, version, load_task});
    return version;
}

SeqNum
Arb::findViolator(Addr addr, SeqNum store, uint32_t store_task) const
{
    SeqNum violator = kNoSeq;
    auto lit = loads.find(addr);
    if (lit != loads.end()) {
        for (const LoadEntry &le : lit->second) {
            if (le.seq > store && le.task > store_task &&
                (le.version == kNoSeq || le.version < store)) {
                if (violator == kNoSeq || le.seq < violator)
                    violator = le.seq;
            }
        }
    }
    return violator;
}

SeqNum
Arb::storeExecuted(Addr addr, SeqNum store, uint32_t store_task)
{
    SeqNum violator = findViolator(addr, store, store_task);
    inflightStores[addr].push_back(store);
    return violator;
}

void
Arb::refreshLoadVersion(Addr addr, SeqNum load, SeqNum version)
{
    auto lit = loads.find(addr);
    if (lit == loads.end())
        return;
    for (LoadEntry &le : lit->second) {
        if (le.seq == load &&
            (le.version == kNoSeq || le.version < version)) {
            le.version = version;
        }
    }
}

namespace
{

template <typename T, typename Pred>
void
eraseIf(std::vector<T> &v, Pred pred)
{
    v.erase(std::remove_if(v.begin(), v.end(), pred), v.end());
}

} // namespace

void
Arb::commitLoad(Addr addr, SeqNum load)
{
    auto it = loads.find(addr);
    if (it == loads.end())
        return;
    eraseIf(it->second,
            [load](const LoadEntry &le) { return le.seq == load; });
    if (it->second.empty())
        loads.erase(it);
}

void
Arb::commitStore(Addr addr, SeqNum store)
{
    auto it = inflightStores.find(addr);
    if (it != inflightStores.end()) {
        eraseIf(it->second, [store](SeqNum s) { return s == store; });
        if (it->second.empty())
            inflightStores.erase(it);
    }
    auto cit = committedVersion.find(addr);
    if (cit == committedVersion.end() || cit->second == kNoSeq ||
        cit->second < store) {
        committedVersion[addr] = store;
    }
}

void
Arb::removeLoad(Addr addr, SeqNum load)
{
    commitLoad(addr, load);    // same bookkeeping: drop the entry
}

void
Arb::removeStore(Addr addr, SeqNum store)
{
    auto it = inflightStores.find(addr);
    if (it == inflightStores.end())
        return;
    eraseIf(it->second, [store](SeqNum s) { return s == store; });
    if (it->second.empty())
        inflightStores.erase(it);
}

void
Arb::reset()
{
    loads.clear();
    inflightStores.clear();
    committedVersion.clear();
}

size_t
Arb::trackedLoads() const
{
    size_t n = 0;
    // mdp-lint: allow(unordered-iter): order-independent size sum.
    for (const auto &[a, v] : loads)
        n += v.size();
    return n;
}

} // namespace mdp
