#include "multiscalar/arb.hh"

#include <algorithm>

#include "base/simd_kernels.hh"

namespace mdp
{

// The kernels speak raw uint32_t with their own sentinel; the two
// "none" encodings must coincide for the probes below to be drop-in.
static_assert(simd::kNone32 == kNoSeq,
              "ARB probes assume the kernel sentinel equals kNoSeq");

SeqNum
Arb::loadExecuted(Addr addr, SeqNum load, uint32_t load_task)
{
    SeqNum version = kNoSeq;
    if (const SeqNum *cv = committedVersion.find(addr))
        version = *cv;

    if (const auto *stores = inflightStores.find(addr)) {
        // Newest in-flight store older than the load; it supersedes
        // the committed version when younger.
        SeqNum newest = simd::maxStoreBelow(stores->data(),
                                            stores->size(), load);
        if (newest != kNoSeq && (version == kNoSeq || newest > version))
            version = newest;
    }

    LoadLanes &lanes = loads[addr];
    if (lanes.seq.capacity() == 0 && !laneFreelist.empty()) {
        lanes = std::move(laneFreelist.back());
        laneFreelist.pop_back();
    }
    lanes.push(load, version, load_task);
    ++numTrackedLoads;
    return version;
}

SeqNum
Arb::findViolator(Addr addr, SeqNum store, uint32_t store_task) const
{
    const auto *les = loads.find(addr);
    if (!les)
        return kNoSeq;
    return simd::earliestViolator(les->seq.data(), les->version.data(),
                                  les->task.data(), les->size(), store,
                                  store_task);
}

SeqNum
Arb::storeExecuted(Addr addr, SeqNum store, uint32_t store_task)
{
    SeqNum violator = findViolator(addr, store, store_task);
    inflightStores[addr].push_back(store);
    return violator;
}

void
Arb::refreshLoadVersion(Addr addr, SeqNum load, SeqNum version)
{
    auto *les = loads.find(addr);
    if (!les)
        return;
    for (size_t i = 0; i < les->size(); ++i) {
        if (les->seq[i] == load &&
            (les->version[i] == kNoSeq || les->version[i] < version)) {
            les->version[i] = version;
        }
    }
}

namespace
{

template <typename T, typename Pred>
void
eraseIf(std::vector<T> &v, Pred pred)
{
    v.erase(std::remove_if(v.begin(), v.end(), pred), v.end());
}

} // namespace

void
Arb::commitLoad(Addr addr, SeqNum load)
{
    auto *les = loads.find(addr);
    if (!les)
        return;
    size_t removed = 0;
    les->eraseSeq(load, removed);
    numTrackedLoads -= removed;
    if (les->empty()) {
        laneFreelist.push_back(std::move(*les));
        loads.erase(addr);
    }
}

void
Arb::commitStore(Addr addr, SeqNum store)
{
    if (auto *stores = inflightStores.find(addr)) {
        eraseIf(*stores, [store](SeqNum s) { return s == store; });
        if (stores->empty())
            inflightStores.erase(addr);
    }
    const SeqNum *cv = committedVersion.find(addr);
    if (!cv || *cv == kNoSeq || *cv < store)
        committedVersion[addr] = store;
}

void
Arb::removeLoad(Addr addr, SeqNum load)
{
    commitLoad(addr, load);    // same bookkeeping: drop the entry
}

void
Arb::removeStore(Addr addr, SeqNum store)
{
    auto *stores = inflightStores.find(addr);
    if (!stores)
        return;
    eraseIf(*stores, [store](SeqNum s) { return s == store; });
    if (stores->empty())
        inflightStores.erase(addr);
}

void
Arb::reset()
{
    loads.clear();
    inflightStores.clear();
    committedVersion.clear();
    numTrackedLoads = 0;
}

} // namespace mdp
