#include "multiscalar/arb.hh"

#include <algorithm>

namespace mdp
{

SeqNum
Arb::loadExecuted(Addr addr, SeqNum load, uint32_t load_task)
{
    SeqNum version = kNoSeq;
    if (const SeqNum *cv = committedVersion.find(addr))
        version = *cv;

    if (const auto *stores = inflightStores.find(addr)) {
        for (SeqNum ss : *stores) {
            if (ss < load && (version == kNoSeq || ss > version))
                version = ss;
        }
    }

    loads[addr].push_back({load, version, load_task});
    ++numTrackedLoads;
    return version;
}

SeqNum
Arb::findViolator(Addr addr, SeqNum store, uint32_t store_task) const
{
    SeqNum violator = kNoSeq;
    if (const auto *les = loads.find(addr)) {
        for (const LoadEntry &le : *les) {
            if (le.seq > store && le.task > store_task &&
                (le.version == kNoSeq || le.version < store)) {
                if (violator == kNoSeq || le.seq < violator)
                    violator = le.seq;
            }
        }
    }
    return violator;
}

SeqNum
Arb::storeExecuted(Addr addr, SeqNum store, uint32_t store_task)
{
    SeqNum violator = findViolator(addr, store, store_task);
    inflightStores[addr].push_back(store);
    return violator;
}

void
Arb::refreshLoadVersion(Addr addr, SeqNum load, SeqNum version)
{
    auto *les = loads.find(addr);
    if (!les)
        return;
    for (LoadEntry &le : *les) {
        if (le.seq == load &&
            (le.version == kNoSeq || le.version < version)) {
            le.version = version;
        }
    }
}

namespace
{

template <typename T, typename Pred>
void
eraseIf(std::vector<T> &v, Pred pred)
{
    v.erase(std::remove_if(v.begin(), v.end(), pred), v.end());
}

} // namespace

void
Arb::commitLoad(Addr addr, SeqNum load)
{
    auto *les = loads.find(addr);
    if (!les)
        return;
    size_t before = les->size();
    eraseIf(*les, [load](const LoadEntry &le) { return le.seq == load; });
    numTrackedLoads -= before - les->size();
    if (les->empty())
        loads.erase(addr);
}

void
Arb::commitStore(Addr addr, SeqNum store)
{
    if (auto *stores = inflightStores.find(addr)) {
        eraseIf(*stores, [store](SeqNum s) { return s == store; });
        if (stores->empty())
            inflightStores.erase(addr);
    }
    const SeqNum *cv = committedVersion.find(addr);
    if (!cv || *cv == kNoSeq || *cv < store)
        committedVersion[addr] = store;
}

void
Arb::removeLoad(Addr addr, SeqNum load)
{
    commitLoad(addr, load);    // same bookkeeping: drop the entry
}

void
Arb::removeStore(Addr addr, SeqNum store)
{
    auto *stores = inflightStores.find(addr);
    if (!stores)
        return;
    eraseIf(*stores, [store](SeqNum s) { return s == store; });
    if (stores->empty())
        inflightStores.erase(addr);
}

void
Arb::reset()
{
    loads.clear();
    inflightStores.clear();
    committedVersion.clear();
    numTrackedLoads = 0;
}

} // namespace mdp
