/**
 * @file
 * Config validation and topology/shard resolution.
 *
 * The model used to accept any parameter values silently -- a zero
 * stage count crashed deep inside the ring arithmetic, a 3x5 mesh
 * over 16 stages just produced nonsense latencies.  Every check here
 * fatals (exit 1) with the offending value spelled out, and runs from
 * the MultiscalarProcessor constructor so no entry point can bypass
 * it.
 */

#include "multiscalar/config.hh"

#include "base/logging.hh"

namespace mdp
{

namespace
{

bool
isPowerOfTwo(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

std::pair<unsigned, unsigned>
resolveMeshDims(const MultiscalarConfig &cfg)
{
    unsigned n = cfg.numStages;
    unsigned mx = cfg.meshX;
    unsigned my = cfg.meshY;
    if (mx == 0 && my == 0) {
        // Most nearly square factorization: the largest divisor of n
        // not exceeding sqrt(n) (deterministic integer search).
        unsigned best = 1;
        for (unsigned d = 1; d * d <= n; ++d) {
            if (n % d == 0)
                best = d;
        }
        mx = n / best;
        my = best;
    } else if (mx == 0) {
        if (my == 0 || n % my != 0) {
            mdp_fatal("meshY=%u does not divide numStages=%u", my, n);
        }
        mx = n / my;
    } else if (my == 0) {
        if (n % mx != 0)
            mdp_fatal("meshX=%u does not divide numStages=%u", mx, n);
        my = n / mx;
    }
    if (mx * my != n) {
        mdp_fatal("mesh %ux%u does not factor numStages=%u (need "
                  "meshX * meshY == numStages)",
                  mx, my, n);
    }
    return {mx, my};
}

unsigned
resolveArbShards(const MultiscalarConfig &cfg)
{
    if (cfg.arbShards != 0)
        return cfg.arbShards;
    // Auto: one shard per 8 stages, rounded up to a power of two, so
    // the paper's 4--8 stage configurations keep a single bank.
    unsigned shards = 1;
    while (shards * 8 < cfg.numStages)
        shards <<= 1;
    return shards;
}

void
validateMultiscalarConfig(const MultiscalarConfig &cfg)
{
    if (cfg.numStages < 1 || cfg.numStages > kMaxStages) {
        mdp_fatal("numStages=%u out of range [1, %u]", cfg.numStages,
                  kMaxStages);
    }
    if (cfg.issueWidth < 1)
        mdp_fatal("issueWidth must be >= 1 (got %u)", cfg.issueWidth);
    if (cfg.stageWindow < 1)
        mdp_fatal("stageWindow must be >= 1 (got %u)", cfg.stageWindow);
    if (cfg.memPorts < 1)
        mdp_fatal("memPorts must be >= 1 (got %u)", cfg.memPorts);
    if (cfg.banksPerStage < 1) {
        mdp_fatal("banksPerStage must be >= 1 (got %u)",
                  cfg.banksPerStage);
    }
    if (!isPowerOfTwo(cfg.blockBytes)) {
        mdp_fatal("blockBytes must be a power of two (got %u)",
                  cfg.blockBytes);
    }
    if (cfg.arbShards != 0 && !isPowerOfTwo(cfg.arbShards)) {
        mdp_fatal("arbShards must be 0 (auto) or a power of two "
                  "(got %u)",
                  cfg.arbShards);
    }
    if (cfg.topology == Topology::Mesh)
        resolveMeshDims(cfg);   // fatals on a non-factoring grid
}

} // namespace mdp
