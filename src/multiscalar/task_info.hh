/**
 * @file
 * Per-task static information precomputed once per trace and shared by
 * every simulation run over it.
 */

#ifndef MDP_MULTISCALAR_TASK_INFO_HH
#define MDP_MULTISCALAR_TASK_INFO_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace mdp
{

/**
 * Task boundaries and per-task memory-op lists.
 */
class TaskSet
{
  public:
    explicit TaskSet(const TraceView &trace);

    uint32_t numTasks() const { return taskCount; }

    SeqNum taskStart(uint32_t task) const { return bounds[task]; }
    SeqNum taskEnd(uint32_t task) const { return bounds[task + 1]; }

    uint32_t
    taskSize(uint32_t task) const
    {
        return bounds[task + 1] - bounds[task];
    }

    /** PC of the first instruction of the task. */
    Addr taskPc(uint32_t task) const { return taskPcs[task]; }

    /** Store sequence numbers of the task, in program order. */
    const std::vector<SeqNum> &stores(uint32_t task) const
    {
        return storeLists[task];
    }

    /** Load sequence numbers of the task, in program order. */
    const std::vector<SeqNum> &loads(uint32_t task) const
    {
        return loadLists[task];
    }

  private:
    uint32_t taskCount = 0;
    std::vector<SeqNum> bounds;
    std::vector<Addr> taskPcs;
    std::vector<std::vector<SeqNum>> storeLists;
    std::vector<std::vector<SeqNum>> loadLists;
};

} // namespace mdp

#endif // MDP_MULTISCALAR_TASK_INFO_HH
