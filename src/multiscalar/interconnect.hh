/**
 * @file
 * Register-forwarding interconnect models (ring and 2D mesh).
 *
 * The paper's machine forwards register values over a unidirectional
 * point-to-point ring: a value produced by task p and consumed by task
 * c travels (c - p) hops, one ring hop latency each -- committed
 * producers included, so the distance is task distance, not stage
 * distance.  The manycore scale-out adds a 2D mesh with
 * dimension-ordered (X-then-Y) routing: the value travels the
 * Manhattan distance between the producing and consuming PEs, plus
 * one mesh diameter per full revolution the task distance implies
 * (the mesh analogue of lapping the ring).
 *
 * The hop formulas live here as inline free functions -- the single
 * source of truth shared by the processor's hot path (which dispatches
 * on the topology enum, no virtual call per operand) and the virtual
 * Interconnect wrapper used by tests, stats and tooling.  They are
 * pure integer functions of the endpoints; the `frontier-order` lint
 * rule keeps wall-clock and hash-order sources out of this file.
 */

#ifndef MDP_MULTISCALAR_INTERCONNECT_HH
#define MDP_MULTISCALAR_INTERCONNECT_HH

#include <cstdint>
#include <memory>

#include "multiscalar/config.hh"

namespace mdp
{

/** Ring hops from producing task @p p to consuming task @p c
 *  (requires p <= c; equal tasks forward locally at zero hops). */
inline uint64_t
ringTaskHops(uint32_t p, uint32_t c)
{
    return c - p;
}

/**
 * Mesh hops from task @p p to task @p c on a @p mx x @p my grid of
 * @p stages PEs (task t runs on PE t % stages, laid out row-major):
 * dimension-ordered XY distance, plus one grid diameter per full
 * revolution of the task distance.
 */
inline uint64_t
meshTaskHops(uint32_t p, uint32_t c, unsigned stages, unsigned mx,
             unsigned my)
{
    const uint32_t dist = c - p;
    const unsigned s1 = p % stages;
    const unsigned s2 = c % stages;
    const unsigned x1 = s1 % mx, y1 = s1 / mx;
    const unsigned x2 = s2 % mx, y2 = s2 / mx;
    const uint64_t dx = x1 > x2 ? x1 - x2 : x2 - x1;
    const uint64_t dy = y1 > y2 ? y1 - y2 : y2 - y1;
    const uint64_t diameter = (mx - 1) + (my - 1);
    return dx + dy + (dist / stages) * diameter;
}

/**
 * Pluggable forwarding-latency model.  The processor itself inlines
 * the formulas above (hot path); this interface exists for tests,
 * reporting and anything that wants topology-agnostic hop queries.
 */
class Interconnect
{
  public:
    virtual ~Interconnect() = default;

    virtual const char *name() const = 0;

    /** Hops a value travels from task @p p to task @p c (p <= c). */
    virtual uint64_t taskHops(uint32_t p, uint32_t c) const = 0;

    /** Forwarding latency in cycles (hops x per-hop latency). */
    uint64_t
    latency(uint32_t p, uint32_t c) const
    {
        return taskHops(p, c) * hopLatency;
    }

  protected:
    explicit Interconnect(unsigned hop_latency)
        : hopLatency(hop_latency)
    {
    }

    unsigned hopLatency;
};

/** Build the interconnect the config names (validates mesh dims). */
std::unique_ptr<Interconnect> makeInterconnect(
    const MultiscalarConfig &cfg);

} // namespace mdp

#endif // MDP_MULTISCALAR_INTERCONNECT_HH
