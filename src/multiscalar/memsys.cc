#include "multiscalar/memsys.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/random.hh"

namespace mdp
{

MemorySystem::MemorySystem(const MultiscalarConfig &config)
    : cfg(config)
{
    mdp_assert(cfg.blockBytes > 0 && cfg.bankBytes >= cfg.blockBytes,
               "bad cache geometry");
    linesPerBank = cfg.bankBytes / cfg.blockBytes;
    tags.assign(static_cast<size_t>(cfg.numBanks()) * linesPerBank, 0);
    bankFree.assign(cfg.numBanks(), 0);
}

unsigned
MemorySystem::bankOf(Addr addr) const
{
    return static_cast<unsigned>((addr / cfg.blockBytes) %
                                 cfg.numBanks());
}

uint64_t
MemorySystem::access(Addr addr, uint64_t now, bool is_store)
{
    unsigned bank = bankOf(addr);
    uint64_t line = addr / cfg.blockBytes;
    // Lines are interleaved over the banks.  The in-bank index is
    // hash-folded: synthetic traces place regions at arbitrary large
    // strides, and a plain modulo index would alias whole regions onto
    // the same sets -- a pathology real code layouts don't exhibit.
    unsigned set = static_cast<unsigned>(
        mix64(line / cfg.numBanks()) % linesPerBank);

    uint64_t start = std::max(now, bankFree[bank]);
    // Tag marker: line number + 1 so 0 stays "invalid".
    uint64_t &tag = tags[static_cast<size_t>(bank) * linesPerBank + set];
    bool hit = tag == line + 1;

    uint64_t done;
    if (hit) {
        ++numHits;
        bankFree[bank] = start + 1;
        done = start + (is_store ? 1 : cfg.bankHitLatency);
    } else {
        ++numMisses;
        tag = line + 1;
        uint64_t bus_start = std::max(start, busFree);
        busFree = bus_start + cfg.busBusyPerMiss;
        bankFree[bank] = start + 2;
        done = bus_start + cfg.missPenalty;
        if (is_store)
            done = bus_start + 2;  // write-allocate behind a buffer
    }
    return done;
}

void
MemorySystem::reset()
{
    std::fill(tags.begin(), tags.end(), 0);
    std::fill(bankFree.begin(), bankFree.end(), 0);
    busFree = 0;
    numHits = numMisses = 0;
}

} // namespace mdp
