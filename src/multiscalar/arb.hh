/**
 * @file
 * Address Resolution Buffer: tracks speculatively executed loads and
 * in-flight store versions per address, detecting memory dependence
 * violations (after Franklin & Sohi's ARB, which the simulated
 * Multiscalar uses for disambiguation).
 */

#ifndef MDP_MULTISCALAR_ARB_HH
#define MDP_MULTISCALAR_ARB_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/flat_hash.hh"
#include "trace/microop.hh"

namespace mdp
{

/**
 * Violation detector and version oracle over the in-flight window.
 *
 * The owner calls loadExecuted()/storeExecuted() at execution,
 * commit*() at task commit, and remove*() for squashed operations.
 */
class Arb
{
  public:
    /**
     * Record an executing load and determine the version (store
     * sequence number) it observes: the newest executed or committed
     * store to the address older than the load, kNoSeq if none.
     */
    SeqNum loadExecuted(Addr addr, SeqNum load, uint32_t load_task);

    /**
     * Record an executing store and check for violations.
     * @return the sequence number of the *earliest* executed load that
     * (a) is younger than the store, (b) belongs to a later task, and
     * (c) observed a version older than this store -- or kNoSeq when
     * the speculation was safe.
     */
    SeqNum storeExecuted(Addr addr, SeqNum store, uint32_t store_task);

    /**
     * Re-scan for a violator without re-recording the store (used
     * after a benign value-predicted violation is absorbed).
     */
    SeqNum findViolator(Addr addr, SeqNum store,
                        uint32_t store_task) const;

    /**
     * Update a load's observed version to @p version: a value
     * prediction absorbed the store's effect, so the load now counts
     * as having seen it.
     */
    void refreshLoadVersion(Addr addr, SeqNum load, SeqNum version);

    /** Retire a load: it can no longer be violated. */
    void commitLoad(Addr addr, SeqNum load);

    /** Retire a store: fold it into the committed version. */
    void commitStore(Addr addr, SeqNum store);

    /** Remove a squashed, previously executed load. */
    void removeLoad(Addr addr, SeqNum load);

    /** Remove a squashed, previously executed store. */
    void removeStore(Addr addr, SeqNum store);

    void reset();

    /** In-flight tracked loads (for tests / invariant checks). */
    size_t trackedLoads() const { return numTrackedLoads; }

  private:
    /**
     * Per-address executed-load records in SoA form: three parallel
     * lanes (sequence number, observed version, owning task) so the
     * violation probe runs as one compare-mask kernel over packed
     * 32-bit lanes instead of striding over 12-byte records.
     */
    struct LoadLanes
    {
        std::vector<SeqNum> seq;
        std::vector<SeqNum> version;
        std::vector<uint32_t> task;

        size_t size() const { return seq.size(); }
        bool empty() const { return seq.empty(); }

        void
        push(SeqNum s, SeqNum v, uint32_t t)
        {
            seq.push_back(s);
            version.push_back(v);
            task.push_back(t);
        }

        /** Drop every record whose seq matches, keeping lane order. */
        void
        eraseSeq(SeqNum s, size_t &removed)
        {
            size_t w = 0;
            for (size_t r = 0; r < seq.size(); ++r) {
                if (seq[r] == s)
                    continue;
                seq[w] = seq[r];
                version[w] = version[r];
                task[w] = task[r];
                ++w;
            }
            removed = seq.size() - w;
            seq.resize(w);
            version.resize(w);
            task.resize(w);
        }
    };

    // The committedVersion lookup alone is ~10% of a fig5 sweep's
    // profile; none of these maps is ever iterated, so the flat
    // open-addressed table is safe (and FlatHashMap could not leak
    // an order anyway -- it has no iteration API).
    FlatHashMap<Addr, LoadLanes> loads;
    FlatHashMap<Addr, std::vector<SeqNum>> inflightStores;
    FlatHashMap<Addr, SeqNum> committedVersion;
    size_t numTrackedLoads = 0;

    /** Emptied per-address lane triples, retained for their vector
     *  capacity.  Per-address load sets empty and refill constantly
     *  (loads commit fast), and without recycling every refill costs
     *  three fresh allocations; the freelist keeps the `loads` table
     *  small (entries still erase on empty) without the malloc
     *  round-trip.  Never affects results -- recycled lanes are
     *  empty, only their capacity differs. */
    std::vector<LoadLanes> laneFreelist;
};

/**
 * Address-interleaved ARB banks for the manycore configurations: one
 * Arb per shard, selected by block-granular address bits (the same
 * interleave the banked data cache uses), so conflict detection is
 * directory-less -- every probe touches exactly the owning shard and
 * the probe cost is independent of machine size.
 *
 * Sharding is semantically invisible: every Arb operation is a
 * per-address point lookup, and ops on different addresses never
 * interact, so any deterministic address -> shard map yields
 * byte-identical results (randomized equivalence tests pin this).
 */
class ShardedArb
{
  public:
    /** @param shard_count power of two; @param block_bytes power of
     *  two, the interleave granularity. */
    explicit ShardedArb(unsigned shard_count = 1,
                        unsigned block_bytes = 64)
        : shards(shard_count), shardMask(shard_count - 1)
    {
        while ((1u << blockShift) < block_bytes)
            ++blockShift;
    }

    SeqNum
    loadExecuted(Addr addr, SeqNum load, uint32_t load_task)
    {
        return shardFor(addr).loadExecuted(addr, load, load_task);
    }

    SeqNum
    storeExecuted(Addr addr, SeqNum store, uint32_t store_task)
    {
        return shardFor(addr).storeExecuted(addr, store, store_task);
    }

    SeqNum
    findViolator(Addr addr, SeqNum store, uint32_t store_task) const
    {
        return shardFor(addr).findViolator(addr, store, store_task);
    }

    void
    refreshLoadVersion(Addr addr, SeqNum load, SeqNum version)
    {
        shardFor(addr).refreshLoadVersion(addr, load, version);
    }

    void
    commitLoad(Addr addr, SeqNum l)
    {
        shardFor(addr).commitLoad(addr, l);
    }

    void
    commitStore(Addr addr, SeqNum s)
    {
        shardFor(addr).commitStore(addr, s);
    }

    void
    removeLoad(Addr addr, SeqNum l)
    {
        shardFor(addr).removeLoad(addr, l);
    }

    void
    removeStore(Addr addr, SeqNum s)
    {
        shardFor(addr).removeStore(addr, s);
    }

    void
    reset()
    {
        for (Arb &s : shards)
            s.reset();
    }

    size_t
    trackedLoads() const
    {
        size_t n = 0;
        for (const Arb &s : shards)
            n += s.trackedLoads();
        return n;
    }

    unsigned shardCount() const { return shards.size(); }

    /** Owning shard index of @p addr (tests / occupancy reporting). */
    unsigned
    shardOf(Addr addr) const
    {
        return static_cast<unsigned>((addr >> blockShift) & shardMask);
    }

  private:
    Arb &shardFor(Addr addr) { return shards[shardOf(addr)]; }
    const Arb &shardFor(Addr addr) const { return shards[shardOf(addr)]; }

    std::vector<Arb> shards;
    uint64_t shardMask;
    unsigned blockShift = 0;
};

} // namespace mdp

#endif // MDP_MULTISCALAR_ARB_HH
