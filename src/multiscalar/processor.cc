#include "multiscalar/processor.hh"

#include <algorithm>
#include <functional>

#include "base/env.hh"
#include "base/logging.hh"
#include "base/ordered.hh"
#include "base/random.hh"
#include "base/simd_kernels.hh"

namespace mdp
{

namespace
{

/** Ctor-init-list hook: fatal on a bad config before any derived
 *  member (memory system, lanes) can divide or index with it. */
const MultiscalarConfig &
validatedConfig(const MultiscalarConfig &config)
{
    validateMultiscalarConfig(config);
    return config;
}

} // namespace

MultiscalarProcessor::MultiscalarProcessor(const TraceView &trace,
                                           const DepOracle &dep_oracle,
                                           const TaskSet &task_set,
                                           const MultiscalarConfig &config,
                                           LanePool *pool)
    : trc(trace), oracle(dep_oracle), tasks(task_set),
      cfg(validatedConfig(config)), state(trace.size(), pool),
      taskRun(task_set.numTasks()), stages(config.numStages),
      memsys(config),
      arb(resolveArbShards(config), config.blockBytes),
      capCycle(config.maxCycles
                   ? config.maxCycles
                   : 1000 + static_cast<uint64_t>(trace.size()) * 60),
      ffEnabled(config.fastForward && !tickReference())
{
    if (cfg.topology == Topology::Mesh) {
        auto [mx, my] = resolveMeshDims(cfg);
        meshXr = mx;
        meshYr = my;
    }

    frontierOn = cfg.perPeFrontier && !frontierReference();
    if (frontierOn) {
        peFrontier = std::make_unique<EventFrontier>(cfg.numStages);
        dueFlag.assign(cfg.numStages, 0);
        dueBuf.reserve(cfg.numStages);
        duePos.reserve(cfg.numStages);
        storeHeap.reserve(cfg.numStages);

        // Consumer CSR: reverse src1/src2 edges, so a producer's issue
        // can wake exactly the stages whose readiness it advances.
        consStart.assign(trc.size() + 1, 0);
        for (SeqNum s = 0; s < trc.size(); ++s) {
            for (SeqNum src : {trc.src1(s), trc.src2(s)}) {
                if (src != kNoSeq)
                    ++consStart[src + 1];
            }
        }
        for (size_t i = 1; i < consStart.size(); ++i)
            consStart[i] += consStart[i - 1];
        consList.resize(consStart.back());
        std::vector<uint32_t> cursor(consStart.begin(),
                                     consStart.end() - 1);
        for (SeqNum s = 0; s < trc.size(); ++s) {
            for (SeqNum src : {trc.src1(s), trc.src2(s)}) {
                if (src != kNoSeq)
                    consList[cursor[src]++] = s;
            }
        }
    }
    // A wakeup or blocked list can never exceed the in-flight window
    // (numStages stage windows); pre-sizing keeps the per-cycle loops
    // allocation-free after warmup.
    size_t window_cap =
        static_cast<size_t>(cfg.numStages) * cfg.stageWindow;
    wakeupBuf.reserve(window_cap);
    frontierBlocked.reserve(window_cap);
    syncBlocked.reserve(window_cap);

    if (cfg.intraJobs > 1) {
        intraPool = std::make_unique<ThreadPool>(cfg.intraJobs);
        readyBufs.resize(cfg.numStages);
        for (ReadyBuf &buf : readyBufs) {
            buf.seq.reserve(cfg.stageWindow);
            buf.ready.reserve(cfg.stageWindow);
        }
        // Stamp 0 never equals a live cycle (cycle pre-increments to
        // 1), so all buffers start stale.
        bufStamp.assign(cfg.numStages, 0);
    }

    policy = makeDependencePolicy(
        resolvePolicyName(cfg.policyName, cfg.policy));
    if (policy->needsSynchronizer()) {
        sync = policy->makeSyncUnit(cfg.sync, cfg.organization,
                                    ModelKind::Multiscalar,
                                    cfg.numStages);
        // Compiler-exposed dependences (section 6): seed the table as
        // if each edge had already mis-speculated enough to arm.
        for (const StaticEdge &e : cfg.preloadEdges) {
            sync->misSpeculation(e.ldpc, e.stpc, e.dist, e.storeTaskPc);
            sync->misSpeculation(e.ldpc, e.stpc, e.dist, e.storeTaskPc);
        }
    }
}

/**
 * The model-side view of one ready load.  Nested so the lazy queries
 * can reach the processor's private frontier scan and oracle wiring.
 */
struct MultiscalarProcessor::IssueCtx final : LoadIssueContext
{
    MultiscalarProcessor &p;
    SeqNum seq;
    uint32_t t;   ///< the load's task (its instance number)

    IssueCtx(MultiscalarProcessor &proc, SeqNum s, uint32_t task)
        : p(proc), seq(s), t(task)
    {
    }

    Addr loadPc() const override { return p.trc.pc(seq); }
    Addr loadAddr() const override { return p.trc.addr(seq); }
    uint64_t instance() const override { return t; }
    LoadId loadId() const override { return seq; }

    bool
    syncSatisfied() const override
    {
        return p.state.test(seq, kSyncDone);
    }

    bool allStoresDone() override { return p.allStoresDoneBefore(seq); }

    SeqNum
    windowProducer() const override
    {
        // Only cross-task producers within the active window matter:
        // intra-task ordering is enforced unconditionally, and
        // committed tasks' stores have long executed.
        SeqNum pr = p.oracle.producer(seq);
        if (pr != kNoSeq && p.trc.taskId(pr) != t &&
            p.trc.taskId(pr) >= p.committedTasks)
            return pr;
        return kNoSeq;
    }

    bool
    storeIssued(SeqNum store) const override
    {
        return p.state.test(store, kIssued);
    }

    const TaskPcSource *taskPcs() const override { return &p; }

    bool canValuePredict() const override { return true; }
};

MultiscalarProcessor::~MultiscalarProcessor() = default;

bool
MultiscalarProcessor::taskMispredicted(uint32_t task) const
{
    if (cfg.seed == 0 || cfg.taskMispredictRate <= 0.0)
        return false;
    uint64_t h = mix64(cfg.seed ^ (task * 0x9e3779b97f4a7c15ULL));
    double u = (h >> 11) * (1.0 / 9007199254740992.0);
    return u < cfg.taskMispredictRate;
}

SimResult
MultiscalarProcessor::run()
{
    while (stepCycle()) {
    }
    return finish();
}

bool
MultiscalarProcessor::stepCycle()
{
    const uint32_t num_tasks = tasks.numTasks();
    if (halted || committedTasks >= num_tasks)
        return false;

    ++cycle;
    ++res.cyclesSimulated;
    if (cycle > capCycle) {
        warn("multiscalar: cycle cap %llu hit with %llu/%u tasks "
             "committed; results are partial",
             static_cast<unsigned long long>(capCycle),
             static_cast<unsigned long long>(committedTasks),
             num_tasks);
        halted = true;
        return false;
    }
    cycleActivity = false;
    res.stageSlots += cfg.numStages;

    sequencerStep();
    if (frontierOn)
        collectDue();
    readyPrecompute();
    if (frontierOn) {
        // O(active-PE) path: visit only the stages whose frontier
        // entry is due.  Stages are visited in the same circular
        // order as the reference loop (offset from the head slot), so
        // intra-cycle effects (FU contention, same-cycle wakes) land
        // identically.  duePos can grow mid-loop via wakeStage.
        for (dueCursor = 0; dueCursor < duePos.size(); ++dueCursor) {
            unsigned idx = static_cast<unsigned>(
                (duePos[dueCursor] + baseSlot) % cfg.numStages);
            dueFlag[idx] = 0;
            uint64_t before = actStamp;
            ++res.stageVisits;
            stageStep(idx);
            if (stages[idx].task < 0)
                continue;   // committed this cycle; unscheduled there
            if (actStamp != before) {
                // Something changed; the very next cycle may differ.
                peFrontier->scheduleEarlier(idx, cycle + 1);
            } else {
                // Quiet visit: park at the stage's next timed event.
                // schedule() (not scheduleEarlier) deliberately
                // overrides stale earlier hints -- any future wake
                // source re-arms via wakeStage.
                peFrontier->schedule(
                    idx, stageNextInteresting(idx, capCycle));
            }
        }
    } else {
        for (unsigned k = 0; k < cfg.numStages; ++k) {
            ++res.stageVisits;
            stageStep(static_cast<unsigned>((committedTasks + k) %
                                            cfg.numStages));
        }
    }
    frontierScan();
    if (sync)
        drainSyncReleases();
    commitStep();

    // Event-driven fast-forward: an idle cycle changed nothing, so
    // every following cycle is identical until a time-gated
    // predicate flips; jump to just before the earliest such cycle
    // (the next step's increment lands on it).
    if (ffEnabled && !cycleActivity && committedTasks < num_tasks) {
        uint64_t target = frontierOn ? frontierJumpTarget(capCycle)
                                     : nextInterestingCycle(capCycle);
        if (target > cycle + 1) {
            res.cyclesSkipped += target - 1 - cycle;
            cycle = target - 1;
        }
    }
    return true;
}

SimResult
MultiscalarProcessor::finish()
{
    // An empty task set never entered the loop; leave the
    // default-constructed result untouched (matching the historical
    // early return, which also skipped the synchronizer epilogue).
    if (tasks.numTasks() == 0)
        return res;
    res.cycles = cycle;
    res.committedTasks = committedTasks;
    if (sync)
        res.syncStats = sync->stats();
    return res;
}

uint64_t
MultiscalarProcessor::stageNextInteresting(unsigned k, uint64_t cap) const
{
    const Stage &st = stages[k];
    if (st.task < 0)
        return cap + 1;
    uint32_t t = static_cast<uint32_t>(st.task);

    uint64_t next = cap + 1;
    auto consider = [&](uint64_t c) {
        if (c > cycle && c < next)
            next = c;
    };

    // Squash re-fetch point of this stage.
    consider(st.resumeCycle);

    // Ops whose producers have all issued become ready once the
    // last result arrives over the interconnect (srcReady's
    // predicate).  An op with an unissued producer has no timed
    // readiness; the producer's own issue is activity and re-arms
    // the scan (in frontier mode, via the consumer-CSR wake).
    // The window is the non-issued range [windowBase, fetchPtr);
    // the flags-lane kernel hops directly between candidates.
    for (SeqNum seq = static_cast<SeqNum>(simd::nextReadyCandidate(
             state.flagsData(), st.windowBase, st.fetchPtr,
             kNotIssuable));
         seq < st.fetchPtr;
         seq = static_cast<SeqNum>(simd::nextReadyCandidate(
             state.flagsData(), seq + 1, st.fetchPtr, kNotIssuable))) {
        uint64_t ready = 0;
        bool timed = true;
        for (SeqNum src : {trc.src1(seq), trc.src2(seq)}) {
            if (src == kNoSeq)
                continue;
            if (!state.test(src, kIssued)) {
                timed = false;
                break;
            }
            uint64_t r = state.done(src);
            uint32_t ptask = trc.taskId(src);
            if (ptask != t)
                r += regHops(ptask, t) * cfg.ringHopLatency;
            ready = std::max(ready, r);
        }
        if (timed)
            consider(ready);
    }

    return next;
}

uint64_t
MultiscalarProcessor::nextInterestingCycle(uint64_t cap) const
{
    uint64_t next = cap + 1;
    auto consider = [&](uint64_t c) {
        if (c > cycle && c < next)
            next = c;
    };

    // Sequencer recovery from a task misprediction.
    if (mispredictStall && mispredictResume != 0)
        consider(mispredictResume);

    for (unsigned k = 0; k < cfg.numStages; ++k)
        consider(stageNextInteresting(k, cap));

    // Head-task commit waits for its last completion to land.  This
    // is a global term (headness flips at commit time without any
    // per-stage event), shared with frontierJumpTarget.
    if (committedTasks < nextTask) {
        uint32_t h = static_cast<uint32_t>(committedTasks);
        const Stage &hs = stages[h % cfg.numStages];
        if (hs.task == static_cast<int64_t>(committedTasks)) {
            const TaskRun &tr = taskRun[h];
            if (tr.issuedOps == tasks.taskSize(h))
                consider(tr.lastDone);
        }
    }

    if (sync)
        consider(sync->nextWakeupCycle());
    return next;
}

uint64_t
MultiscalarProcessor::frontierJumpTarget(uint64_t cap)
{
    uint64_t next = cap + 1;
    auto consider = [&](uint64_t c) {
        if (c > cycle && c < next)
            next = c;
    };

    // Global (non-per-stage) terms, identical to nextInterestingCycle.
    if (mispredictStall && mispredictResume != 0)
        consider(mispredictResume);
    if (committedTasks < nextTask) {
        uint32_t h = static_cast<uint32_t>(committedTasks);
        const Stage &hs = stages[h % cfg.numStages];
        if (hs.task == static_cast<int64_t>(committedTasks)) {
            const TaskRun &tr = taskRun[h];
            if (tr.issuedOps == tasks.taskSize(h))
                consider(tr.lastDone);
        }
    }
    if (sync)
        consider(sync->nextWakeupCycle());

    // Per-stage terms come from the frontier.  Park times are
    // conservative-early (stored <= the exact per-stage event time),
    // so the earliest entry is validated against the exact recompute
    // and re-parked when it was only a stale hint; the loop strictly
    // raises stored times toward exact values, so it terminates.
    uint64_t t;
    uint32_t id;
    while (peFrontier->peekMin(t, id)) {
        if (t >= next)
            break;   // a global term is earlier than any stage event
        uint64_t exact = stageNextInteresting(id, cap);
        if (exact <= t) {
            // Hint confirmed (exact == t under the conservative-early
            // invariant); this is the jump target.
            consider(exact);
            break;
        }
        peFrontier->schedule(id, exact);
    }
    return next;
}

void
MultiscalarProcessor::collectDue()
{
    baseSlot = static_cast<unsigned>(committedTasks % cfg.numStages);
    dueBuf.clear();
    duePos.clear();
    peFrontier->popDue(cycle, dueBuf);
    for (uint32_t id : dueBuf) {
        if (stages[id].task < 0)
            continue;   // empty slot; re-armed at the next assignment
        duePos.push_back(static_cast<uint32_t>(
            (id + cfg.numStages - baseSlot) % cfg.numStages));
        dueFlag[id] = 1;
    }
    // Ring-position order == the reference loop's visit order.
    std::sort(duePos.begin(), duePos.end());
}

void
MultiscalarProcessor::wakeStage(unsigned s, uint64_t t)
{
    if (t > cycle) {
        peFrontier->scheduleEarlier(s, t);
        return;
    }
    // Same-cycle wake (t <= cycle), raised mid-stage-loop.  The
    // reference visits every stage once per cycle in circular order;
    // a flag cleared mid-loop is observed only by stages at LATER
    // ring positions.  Mirror that: splice the stage into the due
    // list if its position has not been passed yet, else defer to the
    // next cycle.
    if (dueFlag[s]) {
        // Already queued (and not yet visited: the flag clears at
        // visit time); nothing to do.
        return;
    }
    uint32_t pos = static_cast<uint32_t>(
        (s + cfg.numStages - baseSlot) % cfg.numStages);
    uint32_t cur_pos =
        dueCursor < duePos.size() ? duePos[dueCursor] : UINT32_MAX;
    if (pos > cur_pos) {
        auto it = std::lower_bound(duePos.begin() + dueCursor + 1,
                                   duePos.end(), pos);
        duePos.insert(it, pos);
        dueFlag[s] = 1;
    } else {
        // Position already passed (or being visited right now): the
        // reference would only see the cleared flag next cycle.
        peFrontier->scheduleEarlier(s, cycle + 1);
    }
}

void
MultiscalarProcessor::onIssued(SeqNum seq, uint32_t t)
{
    // Forwarding traffic accounting: one interconnect transfer per
    // cross-task register edge, weighted by route hops.  Counted in
    // both scheduling modes (deterministic output).
    for (SeqNum src : {trc.src1(seq), trc.src2(seq)}) {
        if (src == kNoSeq)
            continue;
        uint32_t ptask = trc.taskId(src);
        if (ptask != t) {
            ++res.regForwards;
            res.regForwardHops += regHops(ptask, t);
        }
    }

    if (!frontierOn)
        return;

    // Wake every fetched-or-future consumer at its operand-arrival
    // time.  Consumers in later tasks pay the interconnect latency;
    // same-task consumers can issue next cycle at the earliest (the
    // issue scan already passed seq's window slot this cycle).
    uint64_t done = state.done(seq);
    for (uint32_t i = consStart[seq]; i < consStart[seq + 1]; ++i) {
        SeqNum q = consList[i];
        uint32_t tq = trc.taskId(q);
        if (tq < committedTasks || tq >= nextTask)
            continue;
        uint64_t arrival = done;
        if (tq != t)
            arrival += regHops(t, tq) * cfg.ringHopLatency;
        wakeStage(tq % cfg.numStages,
                  std::max(cycle + 1, arrival));
    }
}

Addr
MultiscalarProcessor::taskPc(uint64_t instance) const
{
    if (instance >= committedTasks && instance < nextTask)
        return tasks.taskPc(static_cast<uint32_t>(instance));
    return 0;
}

// ---------------------------------------------------------------------
// Sequencer
// ---------------------------------------------------------------------

void
MultiscalarProcessor::sequencerStep()
{
    if (nextTask >= tasks.numTasks())
        return;

    if (mispredictStall) {
        // Recovery: the wrong-path work drains (all older tasks must
        // commit), then the sequencer re-fetches the right task after
        // the recovery penalty.  Arming the resume timer is a state
        // change in an otherwise-quiet cycle -- without the activity
        // mark, fast-forward would jump past it to the cycle cap.
        if (mispredictResume == 0 && committedTasks == nextTask) {
            mispredictResume = cycle + cfg.mispredictPenalty;
            act();
        }
        if (mispredictResume == 0 || cycle < mispredictResume)
            return;
        mispredictStall = false;
        mispredictResume = 0;
        act();
        // fall through to assignment
    } else if (taskMispredicted(static_cast<uint32_t>(nextTask))) {
        mispredictStall = true;
        ++res.controlStalls;
        act();
        return;
    }

    unsigned idx = static_cast<unsigned>(nextTask % cfg.numStages);
    Stage &st = stages[idx];
    if (st.task >= 0)
        return;   // the PE slot is still busy with an older task

    uint32_t t = static_cast<uint32_t>(nextTask);
    st.task = static_cast<int64_t>(nextTask);
    st.fetchPtr = tasks.taskStart(t);
    st.windowBase = st.fetchPtr;
    st.windowCount = 0;
    st.resumeCycle = cycle + 1;
    taskRun[nextTask] = TaskRun{};
    ++nextTask;
    act();

    if (frontierOn) {
        wakeStage(idx, st.resumeCycle);
        const std::vector<SeqNum> &stores = tasks.stores(t);
        if (!stores.empty()) {
            storeHeap.emplace_back(
                static_cast<uint64_t>(stores.front()), t);
            std::push_heap(storeHeap.begin(), storeHeap.end(),
                           std::greater<>{});
        }
    }
}

// ---------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------

bool
MultiscalarProcessor::srcReady(SeqNum src, uint32_t consumer_task) const
{
    if (src == kNoSeq)
        return true;
    if (!state.test(src, kIssued))
        return false;
    uint32_t ptask = trc.taskId(src);
    uint64_t ready = state.done(src);
    if (ptask != consumer_task)
        ready += regHops(ptask, consumer_task) * cfg.ringHopLatency;
    return ready <= cycle;
}

bool
MultiscalarProcessor::srcsReady(SeqNum seq) const
{
    uint32_t t = trc.taskId(seq);
    return srcReady(trc.src1(seq), t) && srcReady(trc.src2(seq), t);
}


void
MultiscalarProcessor::classify(SeqNum load, bool predicted, bool actual)
{
    (void)load;
    if (predicted)
        actual ? ++res.pred.yy : ++res.pred.yn;
    else
        actual ? ++res.pred.ny : ++res.pred.nn;
}

bool
MultiscalarProcessor::tryIssueMem(SeqNum seq, unsigned &mem_ports)
{
    uint32_t t = trc.taskId(seq);

    if (trc.isStore(seq)) {
        if (mem_ports == 0)
            return false;
        --mem_ports;
        executeStore(seq);
        return true;
    }

    // Loads.  Intra-task memory dependences are never speculated: all
    // older stores of this task must have executed.
    if (!taskStoresDoneBefore(t, seq))
        return false;
    if (mem_ports == 0)
        return false;

    IssueCtx ctx(*this, seq, t);
    LoadDecision d = policy->loadIssueCheck(ctx, sync.get());
    switch (d.action) {
      case LoadAction::BlockFrontier:
        state.set(seq, kBlockedFrontier);
        frontierBlocked.push_back(seq);
        frontierBlockedMin = std::min(frontierBlockedMin, seq);
        ++res.loadsBlockedFrontier;
        return true;

      case LoadAction::BlockProducer:
        state.set(seq, kBlockedPsync);
        psyncWaiters[d.producer].push_back(seq);
        ++res.loadsBlockedSync;
        return true;

      case LoadAction::BlockSync:
        state.set(seq, kBlockedSync | kPredPendingY);
        state.setDone(seq, cycle);   // stash the block time
        syncBlocked.push_back(seq);
        syncBlockedMin = std::min(syncBlockedMin, seq);
        syncPushed = true;
        ++res.loadsBlockedSync;
        return true;

      case LoadAction::IssueValuePredicted:
        // Hybrid: consume the predicted value instead of
        // synchronizing; validated when the producer executes.
        state.set(seq, kValuePred);
        ++res.valuePredUses;
        break;

      case LoadAction::Issue:
        if (d.consultedSync) {
            if (d.check.fullBypass) {
                // Predicted dependence satisfied before the load
                // arrived.  The paper counts this as a predicted-Y /
                // actual-N outcome (section 5.5) -- unless the bypass
                // merely consumes the signal this load already waited
                // for.
                if (!state.test(seq, kSignaled))
                    classify(seq, true, false);
            } else if (!d.check.predicted) {
                state.set(seq, kPredPendingN);
            }
        }
        break;
    }

    --mem_ports;
    executeLoad(seq);
    return true;
}

void
MultiscalarProcessor::executeLoad(SeqNum seq)
{
    const Addr addr = trc.addr(seq);
    const uint32_t t = trc.taskId(seq);
    state.setDone(seq, memsys.access(addr, cycle, false));
    state.set(seq, kIssued);
    arb.loadExecuted(addr, seq, t);

    TaskRun &tr = taskRun[t];
    ++tr.issuedOps;
    tr.lastDone = std::max(tr.lastDone, state.done(seq));
    onIssued(seq, t);
}

void
MultiscalarProcessor::executeStore(SeqNum seq)
{
    const Addr addr = trc.addr(seq);
    const uint32_t t = trc.taskId(seq);
    state.setDone(seq, memsys.access(addr, cycle, true));
    state.set(seq, kIssued);

    TaskRun &tr = taskRun[t];
    ++tr.issuedOps;
    tr.lastDone = std::max(tr.lastDone, state.done(seq));
    onIssued(seq, t);

    // Violation check: did a younger load from a later task already
    // read this location?  Benignly absorbed (value-predicted)
    // violations re-scan in case an unpredicted load also raced.
    SeqNum violator = arb.storeExecuted(addr, seq, t);
    while (violator != kNoSeq && handleViolation(violator, seq))
        violator = arb.findViolator(addr, seq, t);

    // Wake ideal-sync waiters.  The released load can re-attempt
    // issue this same cycle if its stage is visited later in ring
    // order -- wakeStage handles the position split.
    auto wit = psyncWaiters.find(seq);
    if (wit != psyncWaiters.end()) {
        for (SeqNum l : wit->second) {
            if (state.test(l, kBlockedPsync)) {
                state.clear(l, kBlockedPsync);
                if (frontierOn)
                    wakeStage(trc.taskId(l) % cfg.numStages, cycle);
            }
        }
        psyncWaiters.erase(wit);
    }

    // Signal the synchronization table.
    if (sync) {
        wakeupBuf.clear();
        sync->storeReady(trc.pc(seq), addr, t, seq, wakeupBuf);
        const bool repeats = trc.valueRepeats(seq);
        for (LoadId l : wakeupBuf) {
            if (state.test(l, kBlockedSync)) {
                state.clear(l, kBlockedSync);
                state.set(l, kSignaled);
                policy->syncSignalObserved(trc.pc(l), repeats);
                res.syncWaitCycles += cycle - state.done(l);
                res.signalWaitCycles += cycle - state.done(l);
                state.setDone(l, 0);
                if (state.test(l, kPredPendingY)) {
                    state.clear(l, kPredPendingY);
                    classify(l, true, true);
                }
                if (frontierOn)
                    wakeStage(trc.taskId(l) % cfg.numStages, cycle);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Memory-ordering helpers
// ---------------------------------------------------------------------

bool
MultiscalarProcessor::taskStoresDoneBefore(uint32_t t, SeqNum seq)
{
    const std::vector<SeqNum> &stores = tasks.stores(t);
    TaskRun &tr = taskRun[t];
    while (tr.storePtr < stores.size() &&
           state.test(stores[tr.storePtr], kIssued)) {
        ++tr.storePtr;
    }
    return tr.storePtr >= stores.size() || stores[tr.storePtr] >= seq;
}

bool
MultiscalarProcessor::allStoresDoneBefore(SeqNum seq)
{
    uint32_t lt = trc.taskId(seq);
    for (uint64_t t = committedTasks; t <= lt; ++t) {
        if (!taskStoresDoneBefore(static_cast<uint32_t>(t), seq))
            return false;
    }
    return true;
}

uint64_t
MultiscalarProcessor::storeFrontierBound()
{
    uint64_t bound = UINT64_MAX;
    for (uint64_t t = committedTasks; t < nextTask; ++t) {
        uint32_t tt = static_cast<uint32_t>(t);
        const std::vector<SeqNum> &stores = tasks.stores(tt);
        TaskRun &tr = taskRun[tt];
        while (tr.storePtr < stores.size() &&
               state.test(stores[tr.storePtr], kIssued)) {
            ++tr.storePtr;
        }
        if (tr.storePtr < stores.size())
            bound = std::min(bound,
                             static_cast<uint64_t>(stores[tr.storePtr]));
    }
    return bound;
}

uint64_t
MultiscalarProcessor::storeFrontierBoundFast()
{
    // Lazy min-heap over (first-unexecuted-store seq, task).  Keys
    // only understate the true per-task value (stores execute and
    // storePtr advances after a key was pushed), so the top is
    // validated: advance the task's storePtr exactly as the reference
    // scan would, drop exhausted/committed/stale entries, re-push the
    // corrected key.  Each store seq is pushed O(squashes + 1) times
    // total, so the amortized cost is O(log stages) per cycle versus
    // the reference's O(in-flight tasks) scan.
    auto cmp = std::greater<>{};
    while (!storeHeap.empty()) {
        auto [key, tt] = storeHeap.front();
        if (static_cast<uint64_t>(tt) < committedTasks) {
            std::pop_heap(storeHeap.begin(), storeHeap.end(), cmp);
            storeHeap.pop_back();
            continue;
        }
        const std::vector<SeqNum> &stores = tasks.stores(tt);
        TaskRun &tr = taskRun[tt];
        while (tr.storePtr < stores.size() &&
               state.test(stores[tr.storePtr], kIssued)) {
            ++tr.storePtr;
        }
        if (tr.storePtr >= stores.size()) {
            std::pop_heap(storeHeap.begin(), storeHeap.end(), cmp);
            storeHeap.pop_back();
            continue;
        }
        uint64_t truth = stores[tr.storePtr];
        if (truth == key)
            return key;
        std::pop_heap(storeHeap.begin(), storeHeap.end(), cmp);
        storeHeap.back() = {truth, tt};
        std::push_heap(storeHeap.begin(), storeHeap.end(), cmp);
    }
    return UINT64_MAX;
}

// ---------------------------------------------------------------------
// Stage pipeline
// ---------------------------------------------------------------------

void
MultiscalarProcessor::readyPrecompute()
{
    readyValid = false;
    if (!intraPool)
        return;

    // In frontier mode only the due stages get stepped this cycle, so
    // only they need verdicts.  The occupancy sum then differs from
    // the reference's all-stage sum, which is invisible: the verdicts
    // themselves are identical and a cache miss in issueOne falls back
    // to the same live evaluation.
    auto forEachActive = [&](auto &&fn) {
        if (frontierOn) {
            for (size_t i = 0; i < duePos.size(); ++i)
                fn(static_cast<unsigned>((duePos[i] + baseSlot) %
                                         cfg.numStages));
        } else {
            for (unsigned k = 0; k < cfg.numStages; ++k)
                fn(k);
        }
    };

    // Below this occupancy the fan-out overhead dominates; skipping is
    // invisible (stageStep just evaluates live, same verdicts).
    uint64_t occupancy = 0;
    forEachActive([&](unsigned k) {
        const Stage &st = stages[k];
        if (st.task >= 0 && cycle >= st.resumeCycle)
            occupancy += st.fetchPtr - st.windowBase;
    });
    if (occupancy < kIntraMinOccupancy)
        return;

    forEachActive([&](unsigned k) {
        ReadyBuf &buf = readyBufs[k];
        buf.seq.clear();
        buf.ready.clear();
        buf.cursor = 0;
        bufStamp[k] = cycle;
        const Stage &st = stages[k];
        if (st.task < 0 || cycle < st.resumeCycle)
            return;
        // Workers only read the op-state lanes and write their own
        // stage's buffer; the main thread blocks in wait(), so the
        // fan-out is race-free and the buffer contents do not depend
        // on worker scheduling.
        intraPool->submit(
            [this, &buf, base = st.windowBase, end = st.fetchPtr]() {
                for (SeqNum seq =
                         static_cast<SeqNum>(simd::nextReadyCandidate(
                             state.flagsData(), base, end,
                             kNotIssuable));
                     seq < end;
                     seq = static_cast<SeqNum>(simd::nextReadyCandidate(
                         state.flagsData(), seq + 1, end,
                         kNotIssuable))) {
                    buf.seq.push_back(seq);
                    buf.ready.push_back(srcsReady(seq) ? 1 : 0);
                }
            });
    });
    intraPool->wait();
    readyValid = true;
}

void
MultiscalarProcessor::stageStep(unsigned stage_idx)
{
    Stage &stage = stages[stage_idx];
    if (stage.task < 0 || cycle < stage.resumeCycle)
        return;

    // The phase-A verdict cache costs a revalidation load on every
    // candidate, so the scan is instantiated separately for the
    // serial path, which pays nothing for the intra-run machinery.
    // A stage spliced into the due list mid-cycle (same-cycle wake)
    // was absent when phase A ran, so its buffer holds a previous
    // cycle's verdicts; the stamp check forces the live path there.
    if (readyValid && !readyBufs.empty() && bufStamp[stage_idx] == cycle)
        issueScan<true>(stage, stage_idx);
    else
        issueScan<false>(stage, stage_idx);
}

template <bool UsePhaseA>
void
MultiscalarProcessor::issueScan(Stage &stage, unsigned stage_idx)
{
    uint32_t t = static_cast<uint32_t>(stage.task);
    SeqNum end = tasks.taskEnd(t);

    // Fetch in program order into the scheduling window (the range
    // [windowBase, fetchPtr) of the status lane).
    unsigned fetched = 0;
    while (fetched < cfg.issueWidth &&
           stage.windowCount < cfg.stageWindow &&
           stage.fetchPtr < end) {
        ++stage.fetchPtr;
        ++stage.windowCount;
        ++fetched;
    }
    if (fetched)
        act();

    // Out-of-order issue from the window.
    unsigned simple_fu = cfg.simpleIntFUs;
    unsigned complex_fu = cfg.complexIntFUs;
    unsigned fp_fu = cfg.fpFUs;
    unsigned branch_fu = cfg.branchFUs;
    unsigned mem_ports = cfg.memPorts;
    unsigned issued = 0;

    // Retire the issued prefix from the range view.
    const OpLanes::FlagsView fv = state.flagsView();
    while (stage.windowBase < stage.fetchPtr &&
           fv.test(stage.windowBase, kIssued))
        ++stage.windowBase;

    ReadyBuf *cache = UsePhaseA ? &readyBufs[stage_idx] : nullptr;

    // Adaptive scan.  The usual span is ~2x occupancy (issued holes),
    // where a fused scalar loop -- one masked lane test per element
    // through a pinned-base view -- is cheapest.  A load blocked at
    // windowBase pins the range while issue keeps punching holes
    // behind it, though, and such spans grow far past occupancy; once
    // a span exceeds the kernels' inline threshold the scan hops
    // between candidates with the compare-mask kernel instead, which
    // chews the hole runs 16 flags per vector op.  Both drivers visit
    // the identical candidate sequence in program order.  fetchPtr is
    // re-read every iteration because a squash inside tryIssueMem can
    // rewind it; flag updates land in place, so the view stays valid.
    if (stage.fetchPtr - stage.windowBase <= simd::kInlineSpan16) {
        for (SeqNum seq = stage.windowBase;
             seq < stage.fetchPtr && issued < cfg.issueWidth; ++seq) {
            if (fv.test(seq, kNotIssuable))
                continue;
            issueOne<UsePhaseA>(seq, t, stage, cache, simple_fu,
                                complex_fu, fp_fu, branch_fu, mem_ports,
                                issued);
        }
    } else {
        for (SeqNum seq = static_cast<SeqNum>(simd::nextReadyCandidate(
                 state.flagsData(), stage.windowBase, stage.fetchPtr,
                 kNotIssuable));
             seq < stage.fetchPtr && issued < cfg.issueWidth;
             seq = static_cast<SeqNum>(simd::nextReadyCandidate(
                 state.flagsData(), seq + 1, stage.fetchPtr,
                 kNotIssuable))) {
            issueOne<UsePhaseA>(seq, t, stage, cache, simple_fu,
                                complex_fu, fp_fu, branch_fu, mem_ports,
                                issued);
        }
    }
}

/** One issue attempt for a scan candidate; shared by both drivers. */
template <bool UsePhaseA>
__attribute__((always_inline)) inline void
MultiscalarProcessor::issueOne(SeqNum seq, uint32_t t, Stage &stage,
                               ReadyBuf *cache, unsigned &simple_fu,
                               unsigned &complex_fu, unsigned &fp_fu,
                               unsigned &branch_fu, unsigned &mem_ports,
                               unsigned &issued)
{
    {
        bool ready;
        if (UsePhaseA) {
            // Phase-A cached verdict, revalidated per candidate: a
            // squash during this cycle drops the cache (producers may
            // have been un-issued), and anything fetched after phase
            // A is simply absent from the buffer.
            if (readyValid) {
                while (cache->cursor < cache->seq.size() &&
                       cache->seq[cache->cursor] < seq)
                    ++cache->cursor;
                if (cache->cursor < cache->seq.size() &&
                    cache->seq[cache->cursor] == seq) {
                    ready = cache->ready[cache->cursor] != 0;
                    ++cache->cursor;
                } else {
                    ready = srcsReady(seq);
                }
            } else {
                ready = srcsReady(seq);
            }
        } else {
            ready = srcsReady(seq);
        }
        if (!ready)
            return;
    }

    const OpKind kind = trc.kind(seq);
    if (isMem(kind)) {
        if (!tryIssueMem(seq, mem_ports))
            return;
        // Either issued or transitioned to blocked; blocked ops do
        // not consume an issue slot (and stay in the window).
        act();
        if (!state.test(seq, kIssued))
            return;
    } else {
        unsigned *fu = nullptr;
        switch (kind) {
          case OpKind::IntAlu:
            fu = &simple_fu;
            break;
          case OpKind::IntMul:
          case OpKind::IntDiv:
            fu = &complex_fu;
            break;
          case OpKind::FpAdd:
          case OpKind::FpMul:
          case OpKind::FpDiv:
            fu = &fp_fu;
            break;
          case OpKind::Branch:
            fu = &branch_fu;
            break;
          default:
            fu = &simple_fu;
            break;
        }
        if (*fu == 0)
            return;
        --*fu;
        state.setDone(seq, cycle + opLatency(kind));
        state.set(seq, kIssued);
        TaskRun &tr = taskRun[t];
        ++tr.issuedOps;
        tr.lastDone = std::max(tr.lastDone, state.done(seq));
        onIssued(seq, t);
    }
    // The op left the window (kIssued set by every issue path).
    --stage.windowCount;
    ++issued;
    act();
}

// ---------------------------------------------------------------------
// Blocked-load release
// ---------------------------------------------------------------------

void
MultiscalarProcessor::frontierScan()
{
    // The bound cannot move during a scan (releases never set kIssued),
    // so it is computed once; and when it has not moved since the last
    // scan, the class-invariant comment on lastFrontierBound shows no
    // blocked op can become releasable, so the linear rescans are
    // skipped entirely.
    uint64_t bound =
        frontierOn ? storeFrontierBoundFast() : storeFrontierBound();
    bool moved = bound != lastFrontierBound || frontierDirty;
    if (!moved && !syncPushed)
        return;

    if (moved && bound >= frontierBlockedMin) {
        auto keep_frontier = [&](SeqNum seq) {
            if (!state.test(seq, kBlockedFrontier))
                return false;   // squashed or already released
            if (bound >= seq) {
                state.clear(seq, kBlockedFrontier);
                act();
                if (frontierOn)
                    wakeStage(trc.taskId(seq) % cfg.numStages,
                              cycle + 1);
                return false;
            }
            return true;
        };
        std::erase_if(frontierBlocked,
                      [&](SeqNum s) { return !keep_frontier(s); });
        frontierBlockedMin = kNoSeq;
        for (SeqNum s : frontierBlocked)
            frontierBlockedMin = std::min(frontierBlockedMin, s);
    }

    if (sync && bound >= syncBlockedMin) {
        auto keep_sync = [&](SeqNum seq) {
            if (!state.test(seq, kBlockedSync))
                return false;
            if (bound >= seq) {
                // Incomplete synchronization: the predicted store never
                // signalled, but the load is provably safe now.
                sync->frontierRelease(seq);
                state.clear(seq, kBlockedSync);
                state.set(seq, kSyncDone);
                act();
                res.syncWaitCycles += cycle - state.done(seq);
                res.frontierWaitCycles += cycle - state.done(seq);
                state.setDone(seq, 0);
                if (state.test(seq, kPredPendingY)) {
                    state.clear(seq, kPredPendingY);
                    classify(seq, true, false);
                }
                ++res.frontierReleases;
                if (frontierOn)
                    wakeStage(trc.taskId(seq) % cfg.numStages,
                              cycle + 1);
                return false;
            }
            return true;
        };
        std::erase_if(syncBlocked,
                      [&](SeqNum s) { return !keep_sync(s); });
        syncBlockedMin = kNoSeq;
        for (SeqNum s : syncBlocked)
            syncBlockedMin = std::min(syncBlockedMin, s);
    }

    lastFrontierBound = bound;
    frontierDirty = false;
    syncPushed = false;
}

void
MultiscalarProcessor::drainSyncReleases()
{
    wakeupBuf.clear();
    sync->drainReleasedLoads(wakeupBuf);
    for (LoadId l : wakeupBuf) {
        if (state.test(l, kBlockedSync)) {
            state.clear(l, kBlockedSync);
            state.set(l, kSyncDone);
            act();
            res.syncWaitCycles += cycle - state.done(l);
            state.setDone(l, 0);
            if (state.test(l, kPredPendingY)) {
                state.clear(l, kPredPendingY);
                classify(l, true, false);
            }
            if (frontierOn)
                wakeStage(trc.taskId(l) % cfg.numStages, cycle + 1);
        }
    }
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

bool
MultiscalarProcessor::handleViolation(SeqNum load, SeqNum store)
{
    const Addr lpc = trc.pc(load);
    const Addr spc = trc.pc(store);
    const bool repeats = trc.valueRepeats(store);

    // Value hybrids train on every examined violation and absorb the
    // benign ones (correct prediction: no squash).
    const bool was_vp = state.test(load, kValuePred);
    if (policy->absorbViolation({lpc, was_vp, repeats})) {
        ++res.valuePredHits;
        arb.refreshLoadVersion(trc.addr(load), load, store);
        return true;
    }
    if (was_vp)
        ++res.valuePredMisses;

    ++res.misSpeculations;
    if (cfg.logMisSpeculations)
        res.misspecLog.emplace_back(lpc, spc);

    // Table 8: a mis-speculated load was a predicted-N / actual-Y.
    if (state.test(load, kPredPendingN)) {
        state.clear(load, kPredPendingN);
        classify(load, false, true);
    }

    if (sync) {
        uint32_t stask = trc.taskId(store);
        uint32_t dist = trc.taskId(load) - stask;
        sync->misSpeculation(lpc, spc, dist, tasks.taskPc(stask));
    }

    squashFrom(load);
    return false;
}

void
MultiscalarProcessor::squashFrom(SeqNum squash_start)
{
    act();
    uint32_t task0 = trc.taskId(squash_start);

    // Reset every op from the squash point to the youngest assigned
    // instruction.  Work older than the offending load survives, as in
    // the paper ("instructions following the load are squashed").
    for (uint64_t t = task0; t < nextTask; ++t) {
        uint32_t tt = static_cast<uint32_t>(t);
        SeqNum begin = std::max(tasks.taskStart(tt), squash_start);
        SeqNum end = tasks.taskEnd(tt);

        for (SeqNum s = begin; s < end; ++s) {
            if (state.test(s, kIssued)) {
                ++res.squashedOps;
                if (trc.isLoad(s))
                    arb.removeLoad(trc.addr(s), s);
                else if (trc.isStore(s))
                    arb.removeStore(trc.addr(s), s);
            }
            state.resetOp(s);
        }

        Stage &st = stages[tt % cfg.numStages];
        if (tt == task0) {
            // Partial squash: recompute the surviving prefix state.
            TaskRun &tr = taskRun[tt];
            tr = TaskRun{};
            for (SeqNum s = tasks.taskStart(tt); s < squash_start; ++s) {
                if (state.test(s, kIssued)) {
                    ++tr.issuedOps;
                    tr.lastDone = std::max(tr.lastDone, state.done(s));
                }
            }
            if (st.task == static_cast<int64_t>(t)) {
                // The violating load was fetched, so fetchPtr was past
                // the squash point; rewind it.  The surviving window is
                // the non-issued prefix ops: the prefix length minus
                // the issued ops the TaskRun pass just recounted.
                st.fetchPtr = squash_start;
                st.windowBase = std::min(st.windowBase, squash_start);
                st.windowCount = static_cast<uint32_t>(
                    (squash_start - tasks.taskStart(tt)) - tr.issuedOps);
                st.resumeCycle = cycle + cfg.squashPenalty;
                if (frontierOn)
                    wakeStage(tt % cfg.numStages, st.resumeCycle);
            }
        } else {
            taskRun[tt] = TaskRun{};
            if (st.task == static_cast<int64_t>(t)) {
                st.fetchPtr = tasks.taskStart(tt);
                st.windowBase = st.fetchPtr;
                st.windowCount = 0;
                st.resumeCycle = cycle + cfg.squashPenalty;
                if (frontierOn)
                    wakeStage(tt % cfg.numStages, st.resumeCycle);
            }
        }

        // The storePtr rewind above invalidates the lazy store-heap
        // invariant (keys may now overstate a task's first-unexecuted
        // store); a fresh conservative entry restores it.
        if (frontierOn) {
            const std::vector<SeqNum> &stores = tasks.stores(tt);
            if (!stores.empty()) {
                storeHeap.emplace_back(
                    static_cast<uint64_t>(stores.front()), tt);
                std::push_heap(storeHeap.begin(), storeHeap.end(),
                               std::greater<>{});
            }
        }
    }

    // Squashing un-issues producers, so any phase-A readiness verdicts
    // computed before this point are stale.
    readyValid = false;

    // Purge bookkeeping that refers to squashed operations.
    std::erase_if(frontierBlocked,
                  [&](SeqNum s) { return s >= squash_start; });
    std::erase_if(syncBlocked,
                  [&](SeqNum s) { return s >= squash_start; });
    frontierBlockedMin = kNoSeq;
    for (SeqNum s : frontierBlocked)
        frontierBlockedMin = std::min(frontierBlockedMin, s);
    syncBlockedMin = kNoSeq;
    for (SeqNum s : syncBlocked)
        syncBlockedMin = std::min(syncBlockedMin, s);
    for (SeqNum p : sortedKeys(psyncWaiters)) {
        auto it = psyncWaiters.find(p);
        std::erase_if(it->second,
                      [&](SeqNum s) { return s >= squash_start; });
        if (it->second.empty() || p >= squash_start)
            psyncWaiters.erase(it);
    }

    // The storePtr rewinds above can move the frontier bound backwards.
    frontierDirty = true;

    if (sync)
        sync->squash(squash_start, squash_start);
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
MultiscalarProcessor::commitStep()
{
    if (committedTasks >= nextTask)
        return;
    uint32_t t = static_cast<uint32_t>(committedTasks);
    Stage &st = stages[t % cfg.numStages];
    if (st.task != static_cast<int64_t>(committedTasks))
        return;

    TaskRun &tr = taskRun[t];
    uint32_t size = tasks.taskSize(t);
    if (tr.issuedOps < size || tr.lastDone > cycle)
        return;

    // Retire memory state and finish prediction accounting.
    for (SeqNum l : tasks.loads(t)) {
        arb.commitLoad(trc.addr(l), l);
        if (state.test(l, kPredPendingN)) {
            state.clear(l, kPredPendingN);
            classify(l, false, false);
        }
    }
    for (SeqNum s : tasks.stores(t))
        arb.commitStore(trc.addr(s), s);

    res.committedOps += size;
    res.committedLoads += tasks.loads(t).size();
    res.committedStores += tasks.stores(t).size();

    st.task = -1;
    st.windowCount = 0;
    if (frontierOn)
        peFrontier->unschedule(t % cfg.numStages);
    ++committedTasks;
    act();
}

} // namespace mdp
