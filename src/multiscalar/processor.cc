#include "multiscalar/processor.hh"

#include <algorithm>

#include "base/env.hh"
#include "base/logging.hh"
#include "base/ordered.hh"
#include "base/random.hh"

namespace mdp
{

MultiscalarProcessor::MultiscalarProcessor(const TraceView &trace,
                                           const DepOracle &dep_oracle,
                                           const TaskSet &task_set,
                                           const MultiscalarConfig &config)
    : trc(trace), oracle(dep_oracle), tasks(task_set), cfg(config),
      state(trace.size()), taskRun(task_set.numTasks()),
      stages(config.numStages), memsys(config),
      capCycle(config.maxCycles
                   ? config.maxCycles
                   : 1000 + static_cast<uint64_t>(trace.size()) * 60),
      ffEnabled(config.fastForward && !tickReference())
{
    // A wakeup or blocked list can never exceed the in-flight window
    // (numStages stage windows); pre-sizing keeps the per-cycle loops
    // allocation-free after warmup.
    size_t window_cap =
        static_cast<size_t>(cfg.numStages) * cfg.stageWindow;
    wakeupBuf.reserve(window_cap);
    frontierBlocked.reserve(window_cap);
    syncBlocked.reserve(window_cap);

    policy = makeDependencePolicy(
        resolvePolicyName(cfg.policyName, cfg.policy));
    if (policy->needsSynchronizer()) {
        sync = policy->makeSyncUnit(cfg.sync, cfg.organization,
                                    ModelKind::Multiscalar,
                                    cfg.numStages);
        // Compiler-exposed dependences (section 6): seed the table as
        // if each edge had already mis-speculated enough to arm.
        for (const StaticEdge &e : cfg.preloadEdges) {
            sync->misSpeculation(e.ldpc, e.stpc, e.dist, e.storeTaskPc);
            sync->misSpeculation(e.ldpc, e.stpc, e.dist, e.storeTaskPc);
        }
    }
}

/**
 * The model-side view of one ready load.  Nested so the lazy queries
 * can reach the processor's private frontier scan and oracle wiring.
 */
struct MultiscalarProcessor::IssueCtx final : LoadIssueContext
{
    MultiscalarProcessor &p;
    SeqNum seq;
    uint32_t t;   ///< the load's task (its instance number)

    IssueCtx(MultiscalarProcessor &proc, SeqNum s, uint32_t task)
        : p(proc), seq(s), t(task)
    {
    }

    Addr loadPc() const override { return p.trc.pc(seq); }
    Addr loadAddr() const override { return p.trc.addr(seq); }
    uint64_t instance() const override { return t; }
    LoadId loadId() const override { return seq; }

    bool
    syncSatisfied() const override
    {
        return p.state[seq].flags & kSyncDone;
    }

    bool allStoresDone() override { return p.allStoresDoneBefore(seq); }

    SeqNum
    windowProducer() const override
    {
        // Only cross-task producers within the active window matter:
        // intra-task ordering is enforced unconditionally, and
        // committed tasks' stores have long executed.
        SeqNum pr = p.oracle.producer(seq);
        if (pr != kNoSeq && p.trc.taskId(pr) != t &&
            p.trc.taskId(pr) >= p.committedTasks)
            return pr;
        return kNoSeq;
    }

    bool
    storeIssued(SeqNum store) const override
    {
        return p.state[store].flags & kIssued;
    }

    const TaskPcSource *taskPcs() const override { return &p; }

    bool canValuePredict() const override { return true; }
};

MultiscalarProcessor::~MultiscalarProcessor() = default;

bool
MultiscalarProcessor::taskMispredicted(uint32_t task) const
{
    if (cfg.seed == 0 || cfg.taskMispredictRate <= 0.0)
        return false;
    uint64_t h = mix64(cfg.seed ^ (task * 0x9e3779b97f4a7c15ULL));
    double u = (h >> 11) * (1.0 / 9007199254740992.0);
    return u < cfg.taskMispredictRate;
}

SimResult
MultiscalarProcessor::run()
{
    while (stepCycle()) {
    }
    return finish();
}

bool
MultiscalarProcessor::stepCycle()
{
    const uint32_t num_tasks = tasks.numTasks();
    if (halted || committedTasks >= num_tasks)
        return false;

    ++cycle;
    ++res.cyclesSimulated;
    if (cycle > capCycle) {
        warn("multiscalar: cycle cap %llu hit with %llu/%u tasks "
             "committed; results are partial",
             static_cast<unsigned long long>(capCycle),
             static_cast<unsigned long long>(committedTasks),
             num_tasks);
        halted = true;
        return false;
    }
    cycleActivity = false;

    sequencerStep();
    for (unsigned k = 0; k < cfg.numStages; ++k)
        stageStep(stages[(committedTasks + k) % cfg.numStages]);
    frontierScan();
    if (sync)
        drainSyncReleases();
    commitStep();

    // Event-driven fast-forward: an idle cycle changed nothing, so
    // every following cycle is identical until a time-gated
    // predicate flips; jump to just before the earliest such cycle
    // (the next step's increment lands on it).
    if (ffEnabled && !cycleActivity && committedTasks < num_tasks) {
        uint64_t target = nextInterestingCycle(capCycle);
        if (target > cycle + 1) {
            res.cyclesSkipped += target - 1 - cycle;
            cycle = target - 1;
        }
    }
    return true;
}

SimResult
MultiscalarProcessor::finish()
{
    // An empty task set never entered the loop; leave the
    // default-constructed result untouched (matching the historical
    // early return, which also skipped the synchronizer epilogue).
    if (tasks.numTasks() == 0)
        return res;
    res.cycles = cycle;
    res.committedTasks = committedTasks;
    if (sync)
        res.syncStats = sync->stats();
    return res;
}

uint64_t
MultiscalarProcessor::nextInterestingCycle(uint64_t cap) const
{
    uint64_t next = cap + 1;
    auto consider = [&](uint64_t c) {
        if (c > cycle && c < next)
            next = c;
    };

    // Sequencer recovery from a task misprediction.
    if (mispredictStall && mispredictResume != 0)
        consider(mispredictResume);

    for (unsigned k = 0; k < cfg.numStages; ++k) {
        const Stage &st = stages[k];
        if (st.task < 0)
            continue;
        uint32_t t = static_cast<uint32_t>(st.task);

        // Squash re-fetch point of this stage.
        consider(st.resumeCycle);

        // Ops whose producers have all issued become ready once the
        // last result arrives over the ring (srcReady's predicate).
        // An op with an unissued producer has no timed readiness; the
        // producer's own issue is activity and re-arms the scan.
        for (SeqNum seq : st.window) {
            const OpState &os = state[seq];
            if (os.flags & (kIssued | kBlockedSync | kBlockedFrontier |
                            kBlockedPsync))
                continue;
            uint64_t ready = 0;
            bool timed = true;
            for (SeqNum src : {trc.src1(seq), trc.src2(seq)}) {
                if (src == kNoSeq)
                    continue;
                const OpState &ps = state[src];
                if (!(ps.flags & kIssued)) {
                    timed = false;
                    break;
                }
                uint64_t r = ps.doneCycle;
                uint32_t ptask = trc.taskId(src);
                if (ptask != t)
                    r += static_cast<uint64_t>(t - ptask) *
                         cfg.ringHopLatency;
                ready = std::max(ready, r);
            }
            if (timed)
                consider(ready);
        }

        // Head-task commit waits for its last completion to land.
        if (st.task == static_cast<int64_t>(committedTasks)) {
            const TaskRun &tr = taskRun[t];
            if (tr.issuedOps == tasks.taskSize(t))
                consider(tr.lastDone);
        }
    }

    if (sync)
        consider(sync->nextWakeupCycle());
    return next;
}

Addr
MultiscalarProcessor::taskPc(uint64_t instance) const
{
    if (instance >= committedTasks && instance < nextTask)
        return tasks.taskPc(static_cast<uint32_t>(instance));
    return 0;
}

// ---------------------------------------------------------------------
// Sequencer
// ---------------------------------------------------------------------

void
MultiscalarProcessor::sequencerStep()
{
    if (nextTask >= tasks.numTasks())
        return;

    if (mispredictStall) {
        // Recovery: the wrong-path work drains (all older tasks must
        // commit), then the sequencer re-fetches the right task after
        // the recovery penalty.  Arming the resume timer is a state
        // change in an otherwise-quiet cycle -- without the activity
        // mark, fast-forward would jump past it to the cycle cap.
        if (mispredictResume == 0 && committedTasks == nextTask) {
            mispredictResume = cycle + cfg.mispredictPenalty;
            cycleActivity = true;
        }
        if (mispredictResume == 0 || cycle < mispredictResume)
            return;
        mispredictStall = false;
        mispredictResume = 0;
        cycleActivity = true;
        // fall through to assignment
    } else if (taskMispredicted(static_cast<uint32_t>(nextTask))) {
        mispredictStall = true;
        ++res.controlStalls;
        cycleActivity = true;
        return;
    }

    Stage &st = stages[nextTask % cfg.numStages];
    if (st.task >= 0)
        return;   // the ring slot is still busy with an older task

    st.task = static_cast<int64_t>(nextTask);
    st.fetchPtr = tasks.taskStart(static_cast<uint32_t>(nextTask));
    st.window.clear();
    st.resumeCycle = cycle + 1;
    taskRun[nextTask] = TaskRun{};
    ++nextTask;
    cycleActivity = true;
}

// ---------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------

bool
MultiscalarProcessor::srcReady(SeqNum src, uint32_t consumer_task) const
{
    if (src == kNoSeq)
        return true;
    const OpState &ps = state[src];
    if (!(ps.flags & kIssued))
        return false;
    uint32_t ptask = trc.taskId(src);
    uint64_t ready = ps.doneCycle;
    if (ptask != consumer_task)
        ready += static_cast<uint64_t>(consumer_task - ptask) *
                 cfg.ringHopLatency;
    return ready <= cycle;
}

bool
MultiscalarProcessor::srcsReady(SeqNum seq) const
{
    uint32_t t = trc.taskId(seq);
    return srcReady(trc.src1(seq), t) && srcReady(trc.src2(seq), t);
}

void
MultiscalarProcessor::classify(SeqNum load, bool predicted, bool actual)
{
    (void)load;
    if (predicted)
        actual ? ++res.pred.yy : ++res.pred.yn;
    else
        actual ? ++res.pred.ny : ++res.pred.nn;
}

bool
MultiscalarProcessor::tryIssueMem(SeqNum seq, unsigned &mem_ports)
{
    OpState &os = state[seq];
    uint32_t t = trc.taskId(seq);

    if (trc.isStore(seq)) {
        if (mem_ports == 0)
            return false;
        --mem_ports;
        executeStore(seq);
        return true;
    }

    // Loads.  Intra-task memory dependences are never speculated: all
    // older stores of this task must have executed.
    if (!taskStoresDoneBefore(t, seq))
        return false;
    if (mem_ports == 0)
        return false;

    IssueCtx ctx(*this, seq, t);
    LoadDecision d = policy->loadIssueCheck(ctx, sync.get());
    switch (d.action) {
      case LoadAction::BlockFrontier:
        os.flags |= kBlockedFrontier;
        frontierBlocked.push_back(seq);
        ++res.loadsBlockedFrontier;
        return true;

      case LoadAction::BlockProducer:
        os.flags |= kBlockedPsync;
        psyncWaiters[d.producer].push_back(seq);
        ++res.loadsBlockedSync;
        return true;

      case LoadAction::BlockSync:
        os.flags |= kBlockedSync | kPredPendingY;
        os.doneCycle = cycle;   // stash the block time
        syncBlocked.push_back(seq);
        syncPushed = true;
        ++res.loadsBlockedSync;
        return true;

      case LoadAction::IssueValuePredicted:
        // Hybrid: consume the predicted value instead of
        // synchronizing; validated when the producer executes.
        os.flags |= kValuePred;
        ++res.valuePredUses;
        break;

      case LoadAction::Issue:
        if (d.consultedSync) {
            if (d.check.fullBypass) {
                // Predicted dependence satisfied before the load
                // arrived.  The paper counts this as a predicted-Y /
                // actual-N outcome (section 5.5) -- unless the bypass
                // merely consumes the signal this load already waited
                // for.
                if (!(os.flags & kSignaled))
                    classify(seq, true, false);
            } else if (!d.check.predicted) {
                os.flags |= kPredPendingN;
            }
        }
        break;
    }

    --mem_ports;
    executeLoad(seq);
    return true;
}

void
MultiscalarProcessor::executeLoad(SeqNum seq)
{
    const Addr addr = trc.addr(seq);
    const uint32_t t = trc.taskId(seq);
    OpState &os = state[seq];
    os.doneCycle = memsys.access(addr, cycle, false);
    os.flags |= kIssued;
    arb.loadExecuted(addr, seq, t);

    TaskRun &tr = taskRun[t];
    ++tr.issuedOps;
    tr.lastDone = std::max(tr.lastDone, os.doneCycle);
}

void
MultiscalarProcessor::executeStore(SeqNum seq)
{
    const Addr addr = trc.addr(seq);
    const uint32_t t = trc.taskId(seq);
    OpState &os = state[seq];
    os.doneCycle = memsys.access(addr, cycle, true);
    os.flags |= kIssued;

    TaskRun &tr = taskRun[t];
    ++tr.issuedOps;
    tr.lastDone = std::max(tr.lastDone, os.doneCycle);

    // Violation check: did a younger load from a later task already
    // read this location?  Benignly absorbed (value-predicted)
    // violations re-scan in case an unpredicted load also raced.
    SeqNum violator = arb.storeExecuted(addr, seq, t);
    while (violator != kNoSeq && handleViolation(violator, seq))
        violator = arb.findViolator(addr, seq, t);

    // Wake ideal-sync waiters.
    auto wit = psyncWaiters.find(seq);
    if (wit != psyncWaiters.end()) {
        for (SeqNum l : wit->second) {
            if (state[l].flags & kBlockedPsync)
                state[l].flags &= ~kBlockedPsync;
        }
        psyncWaiters.erase(wit);
    }

    // Signal the synchronization table.
    if (sync) {
        wakeupBuf.clear();
        sync->storeReady(trc.pc(seq), addr, t, seq, wakeupBuf);
        const bool repeats = trc.valueRepeats(seq);
        for (LoadId l : wakeupBuf) {
            OpState &ls = state[l];
            if (ls.flags & kBlockedSync) {
                ls.flags &= ~kBlockedSync;
                ls.flags |= kSignaled;
                policy->syncSignalObserved(trc.pc(l), repeats);
                res.syncWaitCycles += cycle - ls.doneCycle;
                res.signalWaitCycles += cycle - ls.doneCycle;
                ls.doneCycle = 0;
                if (ls.flags & kPredPendingY) {
                    ls.flags &= ~kPredPendingY;
                    classify(l, true, true);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Memory-ordering helpers
// ---------------------------------------------------------------------

bool
MultiscalarProcessor::taskStoresDoneBefore(uint32_t t, SeqNum seq)
{
    const std::vector<SeqNum> &stores = tasks.stores(t);
    TaskRun &tr = taskRun[t];
    while (tr.storePtr < stores.size() &&
           (state[stores[tr.storePtr]].flags & kIssued)) {
        ++tr.storePtr;
    }
    return tr.storePtr >= stores.size() || stores[tr.storePtr] >= seq;
}

bool
MultiscalarProcessor::allStoresDoneBefore(SeqNum seq)
{
    uint32_t lt = trc.taskId(seq);
    for (uint64_t t = committedTasks; t <= lt; ++t) {
        if (!taskStoresDoneBefore(static_cast<uint32_t>(t), seq))
            return false;
    }
    return true;
}

uint64_t
MultiscalarProcessor::storeFrontierBound()
{
    uint64_t bound = UINT64_MAX;
    for (uint64_t t = committedTasks; t < nextTask; ++t) {
        uint32_t tt = static_cast<uint32_t>(t);
        const std::vector<SeqNum> &stores = tasks.stores(tt);
        TaskRun &tr = taskRun[tt];
        while (tr.storePtr < stores.size() &&
               (state[stores[tr.storePtr]].flags & kIssued)) {
            ++tr.storePtr;
        }
        if (tr.storePtr < stores.size())
            bound = std::min(bound,
                             static_cast<uint64_t>(stores[tr.storePtr]));
    }
    return bound;
}

// ---------------------------------------------------------------------
// Stage pipeline
// ---------------------------------------------------------------------

void
MultiscalarProcessor::stageStep(Stage &stage)
{
    if (stage.task < 0 || cycle < stage.resumeCycle)
        return;

    uint32_t t = static_cast<uint32_t>(stage.task);
    SeqNum end = tasks.taskEnd(t);

    // Fetch in program order into the scheduling window.
    unsigned fetched = 0;
    while (fetched < cfg.issueWidth &&
           stage.window.size() < cfg.stageWindow &&
           stage.fetchPtr < end) {
        stage.window.push_back(stage.fetchPtr);
        ++stage.fetchPtr;
        ++fetched;
    }
    if (fetched)
        cycleActivity = true;

    // Out-of-order issue from the window.
    unsigned simple_fu = cfg.simpleIntFUs;
    unsigned complex_fu = cfg.complexIntFUs;
    unsigned fp_fu = cfg.fpFUs;
    unsigned branch_fu = cfg.branchFUs;
    unsigned mem_ports = cfg.memPorts;
    unsigned issued = 0;
    bool any_issued = false;

    for (size_t i = 0;
         i < stage.window.size() && issued < cfg.issueWidth; ++i) {
        SeqNum seq = stage.window[i];
        OpState &os = state[seq];
        if (os.flags &
            (kIssued | kBlockedSync | kBlockedFrontier | kBlockedPsync))
            continue;
        if (!srcsReady(seq))
            continue;

        const OpKind kind = trc.kind(seq);
        if (isMem(kind)) {
            if (!tryIssueMem(seq, mem_ports))
                continue;
            // Either issued or transitioned to blocked; blocked ops do
            // not consume an issue slot.
            cycleActivity = true;
            if (!(os.flags & kIssued))
                continue;
        } else {
            unsigned *fu = nullptr;
            switch (kind) {
              case OpKind::IntAlu:
                fu = &simple_fu;
                break;
              case OpKind::IntMul:
              case OpKind::IntDiv:
                fu = &complex_fu;
                break;
              case OpKind::FpAdd:
              case OpKind::FpMul:
              case OpKind::FpDiv:
                fu = &fp_fu;
                break;
              case OpKind::Branch:
                fu = &branch_fu;
                break;
              default:
                fu = &simple_fu;
                break;
            }
            if (*fu == 0)
                continue;
            --*fu;
            os.doneCycle = cycle + opLatency(kind);
            os.flags |= kIssued;
            TaskRun &tr = taskRun[t];
            ++tr.issuedOps;
            tr.lastDone = std::max(tr.lastDone, os.doneCycle);
        }
        ++issued;
        any_issued = true;
        cycleActivity = true;
    }

    if (any_issued) {
        std::erase_if(stage.window, [this](SeqNum s) {
            return state[s].flags & kIssued;
        });
    }
}

// ---------------------------------------------------------------------
// Blocked-load release
// ---------------------------------------------------------------------

void
MultiscalarProcessor::frontierScan()
{
    // The bound cannot move during a scan (releases never set kIssued),
    // so it is computed once; and when it has not moved since the last
    // scan, the class-invariant comment on lastFrontierBound shows no
    // blocked op can become releasable, so the linear rescans are
    // skipped entirely.
    uint64_t bound = storeFrontierBound();
    bool moved = bound != lastFrontierBound || frontierDirty;
    if (!moved && !syncPushed)
        return;

    if (moved) {
        auto keep_frontier = [&](SeqNum seq) {
            OpState &os = state[seq];
            if (!(os.flags & kBlockedFrontier))
                return false;   // squashed or already released
            if (bound >= seq) {
                os.flags &= ~kBlockedFrontier;
                cycleActivity = true;
                return false;
            }
            return true;
        };
        std::erase_if(frontierBlocked,
                      [&](SeqNum s) { return !keep_frontier(s); });
    }

    if (sync) {
        auto keep_sync = [&](SeqNum seq) {
            OpState &os = state[seq];
            if (!(os.flags & kBlockedSync))
                return false;
            if (bound >= seq) {
                // Incomplete synchronization: the predicted store never
                // signalled, but the load is provably safe now.
                sync->frontierRelease(seq);
                os.flags &= ~kBlockedSync;
                os.flags |= kSyncDone;
                cycleActivity = true;
                res.syncWaitCycles += cycle - os.doneCycle;
                res.frontierWaitCycles += cycle - os.doneCycle;
                os.doneCycle = 0;
                if (os.flags & kPredPendingY) {
                    os.flags &= ~kPredPendingY;
                    classify(seq, true, false);
                }
                ++res.frontierReleases;
                return false;
            }
            return true;
        };
        std::erase_if(syncBlocked,
                      [&](SeqNum s) { return !keep_sync(s); });
    }

    lastFrontierBound = bound;
    frontierDirty = false;
    syncPushed = false;
}

void
MultiscalarProcessor::drainSyncReleases()
{
    wakeupBuf.clear();
    sync->drainReleasedLoads(wakeupBuf);
    for (LoadId l : wakeupBuf) {
        OpState &os = state[l];
        if (os.flags & kBlockedSync) {
            os.flags &= ~kBlockedSync;
            os.flags |= kSyncDone;
            cycleActivity = true;
            res.syncWaitCycles += cycle - os.doneCycle;
            os.doneCycle = 0;
            if (os.flags & kPredPendingY) {
                os.flags &= ~kPredPendingY;
                classify(l, true, false);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

bool
MultiscalarProcessor::handleViolation(SeqNum load, SeqNum store)
{
    const Addr lpc = trc.pc(load);
    const Addr spc = trc.pc(store);
    const bool repeats = trc.valueRepeats(store);

    // Value hybrids train on every examined violation and absorb the
    // benign ones (correct prediction: no squash).
    const bool was_vp = state[load].flags & kValuePred;
    if (policy->absorbViolation({lpc, was_vp, repeats})) {
        ++res.valuePredHits;
        arb.refreshLoadVersion(trc.addr(load), load, store);
        return true;
    }
    if (was_vp)
        ++res.valuePredMisses;

    ++res.misSpeculations;
    if (cfg.logMisSpeculations)
        res.misspecLog.emplace_back(lpc, spc);

    // Table 8: a mis-speculated load was a predicted-N / actual-Y.
    if (state[load].flags & kPredPendingN) {
        state[load].flags &= ~kPredPendingN;
        classify(load, false, true);
    }

    if (sync) {
        uint32_t stask = trc.taskId(store);
        uint32_t dist = trc.taskId(load) - stask;
        sync->misSpeculation(lpc, spc, dist, tasks.taskPc(stask));
    }

    squashFrom(load);
    return false;
}

void
MultiscalarProcessor::squashFrom(SeqNum squash_start)
{
    cycleActivity = true;
    uint32_t task0 = trc.taskId(squash_start);

    // Reset every op from the squash point to the youngest assigned
    // instruction.  Work older than the offending load survives, as in
    // the paper ("instructions following the load are squashed").
    for (uint64_t t = task0; t < nextTask; ++t) {
        uint32_t tt = static_cast<uint32_t>(t);
        SeqNum begin = std::max(tasks.taskStart(tt), squash_start);
        SeqNum end = tasks.taskEnd(tt);

        for (SeqNum s = begin; s < end; ++s) {
            OpState &os = state[s];
            if (os.flags & kIssued) {
                ++res.squashedOps;
                if (trc.isLoad(s))
                    arb.removeLoad(trc.addr(s), s);
                else if (trc.isStore(s))
                    arb.removeStore(trc.addr(s), s);
            }
            os = OpState{};
        }

        Stage &st = stages[tt % cfg.numStages];
        if (tt == task0) {
            // Partial squash: recompute the surviving prefix state.
            TaskRun &tr = taskRun[tt];
            tr = TaskRun{};
            for (SeqNum s = tasks.taskStart(tt); s < squash_start; ++s) {
                if (state[s].flags & kIssued) {
                    ++tr.issuedOps;
                    tr.lastDone =
                        std::max(tr.lastDone, state[s].doneCycle);
                }
            }
            if (st.task == static_cast<int64_t>(t)) {
                std::erase_if(st.window, [&](SeqNum s) {
                    return s >= squash_start;
                });
                st.fetchPtr = std::max(st.fetchPtr, squash_start);
                if (st.fetchPtr > squash_start)
                    st.fetchPtr = squash_start;
                st.resumeCycle = cycle + cfg.squashPenalty;
            }
        } else {
            taskRun[tt] = TaskRun{};
            if (st.task == static_cast<int64_t>(t)) {
                st.fetchPtr = tasks.taskStart(tt);
                st.window.clear();
                st.resumeCycle = cycle + cfg.squashPenalty;
            }
        }
    }

    // Purge bookkeeping that refers to squashed operations.
    std::erase_if(frontierBlocked,
                  [&](SeqNum s) { return s >= squash_start; });
    std::erase_if(syncBlocked,
                  [&](SeqNum s) { return s >= squash_start; });
    for (SeqNum p : sortedKeys(psyncWaiters)) {
        auto it = psyncWaiters.find(p);
        std::erase_if(it->second,
                      [&](SeqNum s) { return s >= squash_start; });
        if (it->second.empty() || p >= squash_start)
            psyncWaiters.erase(it);
    }

    // The storePtr rewinds above can move the frontier bound backwards.
    frontierDirty = true;

    if (sync)
        sync->squash(squash_start, squash_start);
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
MultiscalarProcessor::commitStep()
{
    if (committedTasks >= nextTask)
        return;
    uint32_t t = static_cast<uint32_t>(committedTasks);
    Stage &st = stages[t % cfg.numStages];
    if (st.task != static_cast<int64_t>(committedTasks))
        return;

    TaskRun &tr = taskRun[t];
    uint32_t size = tasks.taskSize(t);
    if (tr.issuedOps < size || tr.lastDone > cycle)
        return;

    // Retire memory state and finish prediction accounting.
    for (SeqNum l : tasks.loads(t)) {
        arb.commitLoad(trc.addr(l), l);
        if (state[l].flags & kPredPendingN) {
            state[l].flags &= ~kPredPendingN;
            classify(l, false, false);
        }
    }
    for (SeqNum s : tasks.stores(t))
        arb.commitStore(trc.addr(s), s);

    res.committedOps += size;
    res.committedLoads += tasks.loads(t).size();
    res.committedStores += tasks.stores(t).size();

    st.task = -1;
    st.window.clear();
    ++committedTasks;
    cycleActivity = true;
}

} // namespace mdp
