/**
 * @file
 * Configuration and result types of the Multiscalar timing model.
 *
 * Defaults follow section 5.2: 4 or 8 processing units, each a 2-way
 * out-of-order issue pipeline with the functional-unit latencies of
 * Table 2, a unidirectional point-to-point ring (1 cycle/hop), twice as
 * many interleaved data-cache banks as stages (8 KB direct-mapped each,
 * 64-byte blocks, 2-cycle hits, 10+3-cycle miss penalty) behind a
 * shared split-transaction bus.
 */

#ifndef MDP_MULTISCALAR_CONFIG_HH
#define MDP_MULTISCALAR_CONFIG_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mdp/config.hh"
#include "mdp/policy.hh"
#include "mdp/sync_unit.hh"

namespace mdp
{

/**
 * A statically-known store->load dependence edge (section 6: the
 * compiler could expose unambiguous dependences to the MDPT through
 * ISA extensions).  Preloaded edges start armed, skipping the
 * mis-speculation training the hardware otherwise needs.
 */
struct StaticEdge
{
    Addr ldpc = 0;
    Addr stpc = 0;
    uint32_t dist = 1;
    Addr storeTaskPc = 0;
};

/**
 * Register-forwarding topology between processing units.  Ring is the
 * paper's unidirectional point-to-point ring and the default; Mesh is
 * the manycore scale-out configuration (2D grid, dimension-ordered XY
 * routing, see interconnect.hh).
 */
enum class Topology { Ring, Mesh };

/** Parameters of one simulated Multiscalar processor. */
struct MultiscalarConfig
{
    unsigned numStages = 4;        ///< processing units
    unsigned issueWidth = 2;       ///< per-stage issue (and fetch) width
    unsigned stageWindow = 16;     ///< per-stage scheduling window (ops)

    unsigned ringHopLatency = 1;   ///< cycles per hop, adjacent stages

    // Manycore scale-out (PR 10).
    Topology topology = Topology::Ring;
    /**
     * Mesh grid dimensions; meshX * meshY must equal numStages.  0
     * auto-factors the most nearly square grid (validated fatal when
     * numStages cannot be factored as requested).
     */
    unsigned meshX = 0;
    unsigned meshY = 0;

    /**
     * Address-interleaved ARB shards (power of two).  0 auto-sizes
     * from numStages.  Sharding is semantically invisible -- every ARB
     * operation is a per-address point probe, so results are
     * byte-identical at every shard count.
     */
    unsigned arbShards = 0;
    unsigned squashPenalty = 5;    ///< restart delay after a squash
    unsigned mispredictPenalty = 6; ///< sequencer recovery delay

    // Functional units per stage (Table 2 mix).
    unsigned simpleIntFUs = 2;
    unsigned complexIntFUs = 1;
    unsigned fpFUs = 1;
    unsigned branchFUs = 1;
    unsigned memPorts = 1;

    // Memory system.
    unsigned banksPerStage = 2;    ///< data banks = banksPerStage*stages
    unsigned bankBytes = 8 * 1024;
    unsigned blockBytes = 64;
    unsigned bankHitLatency = 2;
    unsigned missPenalty = 13;     ///< 10 + 3
    unsigned busBusyPerMiss = 4;   ///< bus occupancy per line transfer

    // Speculation.
    SpecPolicy policy = SpecPolicy::Always;

    /** Registry key of the dependence policy (mdp/dep_policy.hh).
     *  Empty selects the legacy enum above; non-empty wins, and can
     *  name descendant policies (storeset, counter, vassist) the enum
     *  cannot express. */
    std::string policyName;

    SyncUnitConfig sync;           ///< used by predictor-backed policies
    SyncOrganization organization = SyncOrganization::Combined;

    /** Probability the sequencer mispredicts a task's successor; the
     *  harness sets this from the workload profile. */
    double taskMispredictRate = 0.0;

    /** Seed for deterministic control-misprediction draws. */
    uint64_t seed = 0x5eed;

    /** Safety cap; 0 derives a generous bound from the trace length. */
    uint64_t maxCycles = 0;

    /** Record (load PC, store PC) of every mis-speculation (needed by
     *  the DDC studies of Table 7). */
    bool logMisSpeculations = false;

    /** Statically-known dependences preloaded into the MDPT before
     *  execution (section 6, compiler-exposed synchronization). */
    std::vector<StaticEdge> preloadEdges;

    /**
     * Event-driven fast-forward: jump over provably idle cycles to the
     * next pending completion / wakeup / resume point instead of
     * ticking through them.  Byte-identical results in both modes;
     * MDP_TICK_REFERENCE=1 forces the naive reference loop
     * process-wide regardless of this flag.
     */
    bool fastForward = true;

    /**
     * Intra-run parallelism: worker count for the per-cycle readiness
     * precompute over the stage windows (MDP_INTRA_JOBS; the harness
     * plumbs the env knob in).  1 is today's serial path; N > 1 runs
     * the read-only phase on a persistent worker set with a
     * deterministic serial issue phase behind it, so results are
     * byte-identical at every setting.
     */
    unsigned intraJobs = 1;

    /**
     * Per-PE event frontier: park each quiescent stage at the exact
     * cycle its next time-gated predicate can flip and step only due
     * stages, so the per-cycle cost is O(active PEs) instead of
     * O(numStages).  Byte-identical to the global-scan path;
     * MDP_FRONTIER_REFERENCE=1 forces the global scan process-wide
     * regardless of this flag (and MDP_TICK_REFERENCE additionally
     * disables the idle-cycle jumps in either mode).
     */
    bool perPeFrontier = true;

    /** Derived: number of data banks. */
    unsigned numBanks() const { return banksPerStage * numStages; }
};

/** Largest supported machine (the manycore sweeps stop here). */
constexpr unsigned kMaxStages = 1024;

/**
 * Validate stage/bank/mesh/shard parameters, mdp_fatal (exit 1) with
 * a precise message on the first violation.  Every model entry point
 * runs this (the MultiscalarProcessor constructor), so a bad config
 * can never silently simulate.
 */
void validateMultiscalarConfig(const MultiscalarConfig &cfg);

/**
 * Resolved mesh dimensions: the configured meshX/meshY with zeros
 * auto-factored into the most nearly square grid whose product is
 * numStages.  Fatal when the request cannot factor.
 */
std::pair<unsigned, unsigned> resolveMeshDims(
    const MultiscalarConfig &cfg);

/** Resolved ARB shard count: arbShards, or the numStages-derived
 *  power-of-two default when 0. */
unsigned resolveArbShards(const MultiscalarConfig &cfg);

/** Dependence-prediction breakdown in the format of Table 8. */
struct PredBreakdown
{
    uint64_t nn = 0;   ///< predicted no dependence, none existed
    uint64_t ny = 0;   ///< predicted no dependence, mis-speculated
    uint64_t yn = 0;   ///< predicted dependence, none (false prediction)
    uint64_t yy = 0;   ///< predicted dependence, dependence existed

    uint64_t total() const { return nn + ny + yn + yy; }
};

/** Results of one simulation run. */
struct SimResult
{
    uint64_t cycles = 0;

    /**
     * Skip accounting: cycles the loop actually executed vs. cycles
     * fast-forward jumped over.  Invariant: cyclesSimulated +
     * cyclesSkipped == cycles (the reference loop reports zero skips).
     */
    uint64_t cyclesSimulated = 0;
    uint64_t cyclesSkipped = 0;
    uint64_t committedOps = 0;
    uint64_t committedLoads = 0;
    uint64_t committedStores = 0;
    uint64_t committedTasks = 0;

    uint64_t misSpeculations = 0;  ///< dependence violations detected
    uint64_t squashedOps = 0;      ///< issued work thrown away
    uint64_t controlStalls = 0;    ///< sequencer mispredict events

    uint64_t loadsBlockedSync = 0;     ///< waits imposed by the MDST
    uint64_t loadsBlockedFrontier = 0; ///< waits for store resolution
    uint64_t frontierReleases = 0;     ///< incomplete synchronizations
    uint64_t syncWaitCycles = 0;       ///< cycles loads spent MDST-blocked
    uint64_t signalWaitCycles = 0;     ///< subset ended by a signal
    uint64_t frontierWaitCycles = 0;   ///< subset ended by the frontier

    /**
     * Register-forwarding traffic: cross-task source operands counted
     * once per issue event, and the interconnect hops each one
     * traveled (ring: task distance; mesh: XY distance plus wrap
     * revolutions).  Deterministic -- identical in every scheduling
     * mode, since the same ops issue at the same cycles.
     */
    uint64_t regForwards = 0;
    uint64_t regForwardHops = 0;

    /**
     * Scheduling-loop occupancy: stage visits actually performed vs.
     * stage slots (numStages per simulated cycle).  Unlike every other
     * field these are *mode-dependent* by design -- the per-PE
     * frontier exists to make visits << slots -- so equivalence tests
     * must not compare them across scheduling modes.
     */
    uint64_t stageVisits = 0;
    uint64_t stageSlots = 0;

    uint64_t valuePredUses = 0;    ///< loads that consumed a prediction
    uint64_t valuePredHits = 0;    ///< benign violations absorbed
    uint64_t valuePredMisses = 0;  ///< wrong values -> squash

    PredBreakdown pred;            ///< Table 8 accounting
    SyncStats syncStats;           ///< structure-level counters

    /** (load PC, store PC) per mis-speculation, if logging enabled. */
    std::vector<std::pair<Addr, Addr>> misspecLog;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committedOps) / cycles : 0.0;
    }

    /** Mean interconnect hops per forwarded register value. */
    double
    avgForwardHops() const
    {
        return regForwards
            ? static_cast<double>(regForwardHops) / regForwards
            : 0.0;
    }

    /** Mis-speculations per committed load (Table 9 metric). */
    double
    misspecPerLoad() const
    {
        return committedLoads
            ? static_cast<double>(misSpeculations) / committedLoads
            : 0.0;
    }
};

} // namespace mdp

#endif // MDP_MULTISCALAR_CONFIG_HH
