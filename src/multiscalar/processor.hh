/**
 * @file
 * Cycle-driven Multiscalar timing model (section 5.2 configuration).
 *
 * The processor sequences a trace's tasks onto a ring of processing
 * stages (task t runs on stage t mod numStages).  Each stage fetches
 * its task in order and issues up to issueWidth ready ops per cycle
 * from a small scheduling window.  Register dependences crossing tasks
 * pay ring-hop latency.  Intra-task memory dependences are never
 * speculated (a load waits until all earlier same-task stores have
 * executed); inter-task memory dependences are handled per the
 * configured speculation policy.  An ARB detects violations; recovery
 * squashes the offending load's task and all younger tasks.
 */

#ifndef MDP_MULTISCALAR_PROCESSOR_HH
#define MDP_MULTISCALAR_PROCESSOR_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "base/event_frontier.hh"
#include "base/soa_lanes.hh"
#include "base/thread_pool.hh"
#include "mdp/dep_policy.hh"
#include "mdp/sync_unit.hh"
#include "multiscalar/arb.hh"
#include "multiscalar/config.hh"
#include "multiscalar/interconnect.hh"
#include "multiscalar/memsys.hh"
#include "multiscalar/task_info.hh"
#include "trace/dep_oracle.hh"
#include "trace/trace.hh"

namespace mdp
{

/**
 * One simulation run of one trace under one configuration.  Construct
 * and call run() once.
 */
class MultiscalarProcessor : public TaskPcSource
{
  public:
    /** @param pool optional recycling arena for the state lanes (the
     *  lockstep evaluator shares one across its lanes). */
    MultiscalarProcessor(const TraceView &trace, const DepOracle &oracle,
                         const TaskSet &tasks,
                         const MultiscalarConfig &config,
                         LanePool *pool = nullptr);
    ~MultiscalarProcessor() override;

    /** Execute the whole trace; returns aggregate results. */
    SimResult run();

    /**
     * Per-cycle stepping interface for the lockstep multi-config
     * evaluator (serve/lockstep.hh): advance the machine by one
     * simulated cycle (honoring the event-driven fast-forward jump)
     * and return false once the run is over -- all tasks committed or
     * the cycle cap tripped.  run() is exactly `while (stepCycle())`
     * followed by finish(), so stepped execution is byte-identical to
     * run-to-completion.
     */
    bool stepCycle();

    /** Seal and return the result once stepCycle() returned false. */
    SimResult finish();

    /** TaskPcSource: PC of an in-flight task, 0 when unknown. */
    Addr taskPc(uint64_t instance) const override;

  private:
    // Op-state flags.
    /** Woken by a store signal; the pending full flag will be consumed
     *  at issue (no re-classification). */
    static constexpr uint16_t kSignaled = 1 << 0;
    static constexpr uint16_t kIssued = 1 << 1;
    static constexpr uint16_t kBlockedSync = 1 << 2;
    static constexpr uint16_t kBlockedFrontier = 1 << 3;
    static constexpr uint16_t kBlockedPsync = 1 << 4;
    static constexpr uint16_t kPredPendingN = 1 << 5;
    static constexpr uint16_t kPredPendingY = 1 << 6;
    /** The load already completed its synchronization (signal,
     *  frontier or eviction release): it must not re-consult the
     *  predictor when it finally issues. */
    static constexpr uint16_t kSyncDone = 1 << 7;
    /** The load consumed a predicted value instead of synchronizing
     *  (VSync); a violation by a value-repeating store is benign. */
    static constexpr uint16_t kValuePred = 1 << 8;

    /** Flags that take an op out of the issue scan. */
    static constexpr uint16_t kNotIssuable =
        kIssued | kBlockedSync | kBlockedFrontier | kBlockedPsync;

    /**
     * A ring slot.  The scheduling window is a *range view* over the
     * packed status lane: exactly the non-issued ops in
     * [windowBase, fetchPtr), in ascending order.  windowBase is
     * lazily advanced past the issued prefix, windowCount mirrors the
     * window occupancy (fetch gating), and the issue scan hops
     * non-candidates via the flags-lane kernel -- no per-stage seq
     * vector to erase/compact every cycle.
     */
    struct Stage
    {
        int64_t task = -1;
        SeqNum fetchPtr = 0;
        SeqNum windowBase = 0;
        uint32_t windowCount = 0;
        uint64_t resumeCycle = 0;
    };

    struct TaskRun
    {
        uint32_t storePtr = 0;     ///< first possibly-unexecuted store
        uint32_t issuedOps = 0;
        uint64_t lastDone = 0;     ///< max doneCycle of issued ops
    };

    /** LoadIssueContext over one ready load (defined in the .cc). */
    struct IssueCtx;

    // --- per-cycle phases -------------------------------------------
    void sequencerStep();

    /**
     * Intra-run parallel phase A: precompute the srcsReady verdict of
     * every issue candidate in every active stage window, fanned out
     * over the persistent worker set (cfg.intraJobs > 1).  Strictly
     * read-only on the op-state lanes; each worker writes only its own
     * stage's ReadyBuf, so the fan-out is race-free and the buffers
     * are deterministic regardless of worker scheduling.  stageStep
     * (phase B, serial, deterministic stage order) consumes the cached
     * verdicts and falls back to live evaluation for ops the cache
     * missed; a squash invalidates the whole cache (readyValid) since
     * it un-issues producers.  Cached and live verdicts agree because
     * an op issued in phase B completes strictly after the current
     * cycle, so it cannot flip a same-cycle srcsReady outcome.
     */
    void readyPrecompute();

    void stageStep(unsigned stage_idx);

    /**
     * The fetch + issue scan body of stageStep, instantiated twice:
     * UsePhaseA=true consults (and revalidates) the phase-A verdict
     * buffer; UsePhaseA=false is the serial path with no trace of the
     * intra-run machinery in its inner loop.
     */
    template <bool UsePhaseA>
    void issueScan(Stage &stage, unsigned stage_idx);

    struct ReadyBuf;

    /** One issue attempt for a scan candidate (see issueScan).
     *  Force-inlined: the out-of-line form passes ten live references
     *  per candidate and spills the FU budget out of registers, which
     *  costs a few percent of the whole run on the dense benches. */
    template <bool UsePhaseA>
    __attribute__((always_inline)) inline
    void issueOne(SeqNum seq, uint32_t t, Stage &stage, ReadyBuf *cache,
                  unsigned &simple_fu, unsigned &complex_fu,
                  unsigned &fp_fu, unsigned &branch_fu,
                  unsigned &mem_ports, unsigned &issued);
    void frontierScan();
    void drainSyncReleases();
    void commitStep();

    // --- per-PE event frontier (manycore fast path) -----------------
    /**
     * Drain the PE frontier into this cycle's due set: the positions
     * (ring order relative to the head task's stage) of every stage
     * whose park time has arrived.  Skipping every other stage is
     * provably invisible -- a stage is only parked past a cycle when
     * stepping it that cycle could not mutate any semantic state, and
     * every event that can change that verdict wakes it (wakeStage).
     */
    void collectDue();

    /**
     * Lower stage @p s's park time to @p t.  A wake at the current
     * cycle (a flag cleared mid stage-loop by another stage's store)
     * splices the stage into the remainder of this cycle's due walk
     * when its ring position has not been passed yet -- exactly the
     * stages the reference all-stage loop would still visit -- and
     * otherwise re-arms it for the next cycle.
     */
    void wakeStage(unsigned s, uint64_t t);

    /** Producer @p seq (task @p t) issued: forwarding statistics, and
     *  wake each consumer's stage at its value-arrival cycle. */
    void onIssued(SeqNum seq, uint32_t t);

    /**
     * The per-stage portion of nextInterestingCycle() -- squash
     * resume and timed window readiness of stage @p k, with the same
     * "strictly after the current cycle" filter; @p cap + 1 when
     * none.  The reference scan takes the min over all stages; the
     * frontier path uses it as the exact park time of one stage.
     */
    uint64_t stageNextInteresting(unsigned k, uint64_t cap) const;

    /**
     * Frontier-mode jump target: the global O(1) terms (sequencer
     * recovery, head-task commit, synchronizer wakeup) plus the
     * validated frontier minimum.  Park times are conservative-early
     * (wakes only ever lower them), so the top entry is re-validated
     * against stageNextInteresting() until it is exact -- at which
     * point every other entry is provably no earlier, and the target
     * equals the reference scan's to the cycle.
     */
    uint64_t frontierJumpTarget(uint64_t cap);

    /**
     * Heap-backed storeFrontierBound(): the same exact minimum,
     * validated lazily from a heap of (first possibly-unexecuted
     * store, task) entries instead of walking every in-flight task.
     * Entry keys are conservative-low (task assignment and squash
     * push the task's first store; keys only advance at validation),
     * so the validated top is the true bound.
     */
    uint64_t storeFrontierBoundFast();

    /** Record a semantic mutation: licenses no fast-forward jump this
     *  cycle, and marks the currently stepped stage as active. */
    void
    act()
    {
        cycleActivity = true;
        ++actStamp;
    }

    /** Forwarding hops from producer task @p p to consumer task
     *  @p c -- the interconnect.hh formulas, dispatched inline. */
    uint64_t
    regHops(uint32_t p, uint32_t c) const
    {
        return cfg.topology == Topology::Ring
            ? ringTaskHops(p, c)
            : meshTaskHops(p, c, cfg.numStages, meshXr, meshYr);
    }

    /**
     * Earliest cycle after the current one at which a time-gated
     * predicate can change behavior: sequencer recovery completes, a
     * stage's squash penalty elapses, an in-flight op becomes ready
     * once its producers' results arrive over the ring, the head task's
     * last completion lands (commit), or the synchronizer fires a timed
     * wakeup.  Blocked loads are excluded on purpose -- they are only
     * ever released by another op's activity.  Clamped to @p cap + 1
     * so a deadlocked machine hits the cap like the reference loop.
     */
    uint64_t nextInterestingCycle(uint64_t cap) const;

    // --- issue helpers ----------------------------------------------
    bool srcsReady(SeqNum seq) const;
    bool srcReady(SeqNum src, uint32_t consumer_task) const;

    /** Try to issue a memory op; returns true if it issued (or became
     *  blocked -- in either case the window slot is handled). */
    bool tryIssueMem(SeqNum seq, unsigned &mem_ports);

    void executeLoad(SeqNum seq);
    void executeStore(SeqNum seq);

    // --- memory-ordering helpers ------------------------------------
    /** All stores of task @p t older than @p seq have executed. */
    bool taskStoresDoneBefore(uint32_t t, SeqNum seq);

    /** All stores older than @p seq in every active task executed. */
    bool allStoresDoneBefore(SeqNum seq);

    /**
     * Sequence number of the oldest unexecuted store across all
     * in-flight tasks (UINT64_MAX when none).  A blocked op @c seq is
     * frontier-releasable iff the bound is >= seq: tasks younger than
     * the op's own contribute only stores past its task's end, so the
     * global minimum decides exactly like the per-task walk in
     * allStoresDoneBefore().
     */
    uint64_t storeFrontierBound();

    // --- recovery -----------------------------------------------------
    /** @return true when the violation was absorbed benignly by a
     *  correct value prediction (no squash happened). */
    bool handleViolation(SeqNum load, SeqNum store);

    /** Squash @p squash_start and everything younger; older work in
     *  the same task survives (the paper squashes "the instructions
     *  following the load"). */
    void squashFrom(SeqNum squash_start);

    // --- classification (Table 8) -----------------------------------
    void classify(SeqNum load, bool predicted, bool actual);

    bool taskMispredicted(uint32_t task) const;

    TraceView trc;
    const DepOracle &oracle;
    const TaskSet &tasks;
    MultiscalarConfig cfg;

    /** Per-op completion-time and status lanes (SoA; the dense scans
     *  run as compare-mask kernels over the packed lanes). */
    OpLanes state;
    std::vector<TaskRun> taskRun;
    std::vector<Stage> stages;

    // --- intra-run parallelism (phase A cache) ----------------------
    /** Cached issue candidates of one stage, ascending seq order. */
    struct ReadyBuf
    {
        std::vector<SeqNum> seq;
        std::vector<uint8_t> ready;
        size_t cursor = 0;
    };

    /** Workers for readyPrecompute(); null when cfg.intraJobs <= 1. */
    std::unique_ptr<ThreadPool> intraPool;
    std::vector<ReadyBuf> readyBufs;
    /** The phase-A cache matches this cycle's pre-issue state; cleared
     *  by squashes (and by skipping the precompute). */
    bool readyValid = false;

    /** Cycle each ReadyBuf was last refreshed.  The frontier path only
     *  refreshes due stages, and a stage spliced into the due walk
     *  mid-cycle has no verdicts at all -- a stale buffer must fall
     *  back to live evaluation, never be consulted. */
    std::vector<uint64_t> bufStamp;

    /** Total window occupancy below which the parallel precompute is
     *  skipped (fan-out overhead would dominate; verdicts are
     *  identical either way, so the threshold cannot change results). */
    static constexpr uint64_t kIntraMinOccupancy = 32;

    MemorySystem memsys;
    ShardedArb arb;
    std::unique_ptr<DependencePolicy> policy;
    std::unique_ptr<DepSynchronizer> sync;

    // --- per-PE event frontier state --------------------------------
    /** Frontier fast path engaged (config flag minus the
     *  MDP_FRONTIER_REFERENCE kill switch). */
    bool frontierOn = false;
    /** Resolved mesh grid (0 when the topology is the ring). */
    unsigned meshXr = 0;
    unsigned meshYr = 0;
    /** Park time per stage; due stages are popped each cycle. */
    std::unique_ptr<EventFrontier> peFrontier;
    /** Scratch: ids popped due this cycle. */
    std::vector<uint32_t> dueBuf;
    /** This cycle's due stages as ring positions, ascending; the stage
     *  walk consumes it through dueCursor, and same-cycle wakes splice
     *  positions in behind the cursor. */
    std::vector<uint32_t> duePos;
    size_t dueCursor = 0;
    /** Stage is queued (unprocessed) in duePos this cycle. */
    std::vector<uint8_t> dueFlag;
    /** committedTasks % numStages, latched when the due set forms. */
    unsigned baseSlot = 0;
    /** Mutation counter behind act(); a stage whose step leaves it
     *  unchanged provably did nothing and parks at its exact next
     *  interesting cycle. */
    uint64_t actStamp = 0;

    /** Consumer CSR over the trace (built only for the frontier):
     *  consumers of op s are consList[consStart[s] .. consStart[s+1]). */
    std::vector<uint32_t> consStart;
    std::vector<SeqNum> consList;

    /** Lazy (first possibly-unexecuted store, task) min-heap behind
     *  storeFrontierBoundFast(); std::greater order on the pair. */
    std::vector<std::pair<uint64_t, uint32_t>> storeHeap;

    // Blocked-op bookkeeping.
    std::vector<SeqNum> frontierBlocked;  ///< WAIT/NEVER waits
    std::vector<SeqNum> syncBlocked;      ///< MDST waits

    /**
     * Smallest seq in each blocked list (kNoSeq when empty).  A scan
     * can only release ops with seq <= bound, so while the min sits
     * above the bound the linear rescan is skipped outright -- the
     * dominant case on wide machines, where the bound moves every
     * commit but the blocked window trails far behind it.  Squash
     * erases only seqs >= squash_start, and the survivors' min is
     * recomputed there; a skipped scan therefore never misses a
     * releasable op, it only defers dropping already-cleared entries
     * (which release nothing either way).
     */
    SeqNum frontierBlockedMin = kNoSeq;
    SeqNum syncBlockedMin = kNoSeq;

    /**
     * Frontier-scan gating (same argument as the OoO model's): every
     * frontierBlocked entry has seq > lastFrontierBound, and the bound
     * only moves backwards across a squash (frontierDirty) -- task
     * assignment can drop it from "no unexecuted store" to a finite
     * value, but only when every blocked list is already empty, and the
     * bound comparison catches that case by itself.  syncBlocked ops
     * never checked the frontier at push time, so a push since the last
     * scan (syncPushed) forces a scan of that list.
     */
    uint64_t lastFrontierBound = 0;
    bool frontierDirty = true;
    bool syncPushed = false;

    // Hash map plus sorted drain: squash recovery visits keys in
    // SeqNum order via sortedKeys() so the walk never depends on the
    // hash layout; all other accesses are point lookups.
    std::unordered_map<SeqNum, std::vector<SeqNum>> psyncWaiters;

    // Sequencer state.
    uint64_t nextTask = 0;
    uint64_t committedTasks = 0;
    bool mispredictStall = false;
    uint64_t mispredictResume = 0;

    uint64_t cycle = 0;
    SimResult res;

    /** Deadlock-guard cycle cap (maxCycles or the trace-derived
     *  default), fixed at construction. */
    uint64_t capCycle = 0;
    /** The cap tripped: stepCycle() must keep returning false. */
    bool halted = false;

    /** Fast-forward enabled (config flag minus the env kill switch). */
    bool ffEnabled;
    /** Did the current cycle mutate any semantic state?  Every mutation
     *  site must set this; a cycle that ends with it clear is provably
     *  identical to the next, which is what licenses the jump. */
    bool cycleActivity = false;

    std::vector<LoadId> wakeupBuf;
};

} // namespace mdp

#endif // MDP_MULTISCALAR_PROCESSOR_HH
