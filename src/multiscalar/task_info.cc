#include "multiscalar/task_info.hh"

namespace mdp
{

TaskSet::TaskSet(const TraceView &trace)
{
    bounds = trace.taskBoundaries();
    taskCount = trace.numTasks();
    taskPcs.resize(taskCount);
    storeLists.resize(taskCount);
    loadLists.resize(taskCount);
    for (uint32_t t = 0; t < taskCount; ++t) {
        taskPcs[t] = trace[bounds[t]].taskPc;
        for (SeqNum s = bounds[t]; s < bounds[t + 1]; ++s) {
            if (trace[s].isStore())
                storeLists[t].push_back(s);
            else if (trace[s].isLoad())
                loadLists[t].push_back(s);
        }
    }
}

} // namespace mdp
