/**
 * @file
 * Banked data-cache + shared-bus timing model (section 5.2): a
 * crossbar connects the processing units to interleaved direct-mapped
 * data banks; all misses share one split-transaction memory bus.
 */

#ifndef MDP_MULTISCALAR_MEMSYS_HH
#define MDP_MULTISCALAR_MEMSYS_HH

#include <cstdint>
#include <vector>

#include "multiscalar/config.hh"
#include "trace/microop.hh"

namespace mdp
{

/**
 * Timing-only memory system: returns the completion cycle of each
 * access and tracks bank/bus contention.  State is tags only (the
 * simulator replays a trace, so data values are never needed).
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MultiscalarConfig &config);

    /**
     * Perform a timed access.
     * @param addr   effective address
     * @param now    issue cycle
     * @param is_store store accesses complete in one cycle after bank
     *                 access (write buffering) but still occupy the
     *                 bank and allocate on miss
     * @return completion cycle of the access
     */
    uint64_t access(Addr addr, uint64_t now, bool is_store);

    uint64_t hits() const { return numHits; }
    uint64_t misses() const { return numMisses; }

    void reset();

  private:
    unsigned bankOf(Addr addr) const;

    MultiscalarConfig cfg;
    unsigned linesPerBank;
    /** Direct-mapped tag arrays, flattened to one allocation indexed
     *  bank * linesPerBank + set (0 = invalid): every access touches a
     *  tag, and the flat layout avoids a second pointer chase. */
    std::vector<uint64_t> tags;
    /** Next cycle each bank can accept an access. */
    std::vector<uint64_t> bankFree;
    uint64_t busFree = 0;
    uint64_t numHits = 0;
    uint64_t numMisses = 0;
};

} // namespace mdp

#endif // MDP_MULTISCALAR_MEMSYS_HH
