#include "multiscalar/interconnect.hh"

namespace mdp
{

namespace
{

class RingInterconnect final : public Interconnect
{
  public:
    explicit RingInterconnect(unsigned hop_latency)
        : Interconnect(hop_latency)
    {
    }

    const char *name() const override { return "ring"; }

    uint64_t
    taskHops(uint32_t p, uint32_t c) const override
    {
        return ringTaskHops(p, c);
    }
};

class MeshInterconnect final : public Interconnect
{
  public:
    MeshInterconnect(unsigned hop_latency, unsigned stages, unsigned mx,
                     unsigned my)
        : Interconnect(hop_latency), numStages(stages), meshX(mx),
          meshY(my)
    {
    }

    const char *name() const override { return "mesh"; }

    uint64_t
    taskHops(uint32_t p, uint32_t c) const override
    {
        return meshTaskHops(p, c, numStages, meshX, meshY);
    }

  private:
    unsigned numStages;
    unsigned meshX;
    unsigned meshY;
};

} // namespace

std::unique_ptr<Interconnect>
makeInterconnect(const MultiscalarConfig &cfg)
{
    if (cfg.topology == Topology::Mesh) {
        auto [mx, my] = resolveMeshDims(cfg);
        return std::make_unique<MeshInterconnect>(cfg.ringHopLatency,
                                                  cfg.numStages, mx, my);
    }
    return std::make_unique<RingInterconnect>(cfg.ringHopLatency);
}

} // namespace mdp
