/**
 * @file
 * The dynamic instruction record that all processing models consume.
 *
 * A trace is a fully-resolved dynamic instruction stream: every memory
 * operation carries its effective address, every instruction carries the
 * sequence numbers of its register producers, and every instruction is
 * labelled with the Multiscalar task it belongs to.  This is the
 * information an execution-driven simulator would compute on the fly;
 * carrying it in the trace lets the timing models replay execution under
 * different speculation policies deterministically.
 */

#ifndef MDP_TRACE_MICROOP_HH
#define MDP_TRACE_MICROOP_HH

#include <cstdint>
#include <limits>

namespace mdp
{

/** Dynamic sequence number (program order position within the trace). */
using SeqNum = uint32_t;

/** Sentinel meaning "no producer". */
constexpr SeqNum kNoSeq = std::numeric_limits<SeqNum>::max();

/** Instruction address. */
using Addr = uint64_t;

/** Instruction classes, matching the functional units of Table 2. */
enum class OpKind : uint8_t
{
    IntAlu,     ///< simple integer (latency 1)
    IntMul,     ///< complex integer multiply (latency 4)
    IntDiv,     ///< complex integer divide (latency 12)
    FpAdd,      ///< FP add/sub/convert (latency 2)
    FpMul,      ///< FP multiply (latency 4)
    FpDiv,      ///< FP divide (latency 12/18)
    Branch,     ///< control transfer (latency 1)
    Load,       ///< memory read
    Store,      ///< memory write
};

/** @return true for Load/Store. */
constexpr bool
isMem(OpKind k)
{
    return k == OpKind::Load || k == OpKind::Store;
}

/** Execution latency in cycles for non-memory classes (Table 2). */
constexpr unsigned
opLatency(OpKind k)
{
    switch (k) {
      case OpKind::IntAlu:
        return 1;
      case OpKind::IntMul:
        return 4;
      case OpKind::IntDiv:
        return 12;
      case OpKind::FpAdd:
        return 2;
      case OpKind::FpMul:
        return 4;
      case OpKind::FpDiv:
        return 18;
      case OpKind::Branch:
        return 1;
      case OpKind::Load:
      case OpKind::Store:
        return 0;   // memory latency comes from the memory system
    }
    return 1;
}

/**
 * One dynamic instruction.  Kept compact: traces run to millions of
 * entries and are replayed many times.
 */
struct MicroOp
{
    Addr pc = 0;            ///< static instruction address
    Addr addr = 0;          ///< effective address (mem ops only)
    SeqNum src1 = kNoSeq;   ///< register producer (sequence number)
    SeqNum src2 = kNoSeq;   ///< second register producer
    uint32_t taskId = 0;    ///< Multiscalar task index (monotonic)
    Addr taskPc = 0;        ///< PC of the first instruction of the task
    OpKind kind = OpKind::IntAlu;
    /** Stores only: this instance writes the same value as the
     *  previous dynamic instance of the same static store (drives the
     *  value-prediction hybrid of section 6). */
    bool valueRepeats = false;

    bool isLoad() const { return kind == OpKind::Load; }
    bool isStore() const { return kind == OpKind::Store; }
    bool isMemOp() const { return isMem(kind); }
};

} // namespace mdp

#endif // MDP_TRACE_MICROOP_HH
