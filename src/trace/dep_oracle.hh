/**
 * @file
 * Exact memory-dependence oracle over a trace.
 *
 * For every load it computes the most recent preceding store to the same
 * address (the load's true producer).  The oracle is what the idealized
 * policies (PSYNC, WAIT-with-perfect-prediction) consult, what the
 * "unrealistic OoO" window model of section 5 counts with, and what the
 * Multiscalar ARB uses to attribute violations.
 */

#ifndef MDP_TRACE_DEP_ORACLE_HH
#define MDP_TRACE_DEP_ORACLE_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace mdp
{

/**
 * Precomputed last-writer information for all loads of a trace.
 */
class DepOracle
{
  public:
    /** Build the oracle; O(n) expected over the trace. */
    explicit DepOracle(const TraceView &trace);

    /**
     * @return the sequence number of the most recent store before @p
     * load_seq writing the load's address, or kNoSeq if the location
     * was never previously written.
     */
    SeqNum producer(SeqNum load_seq) const { return producers[load_seq]; }

    /** @return true if the load has a producer store in the trace. */
    bool hasProducer(SeqNum load_seq) const
    {
        return producers[load_seq] != kNoSeq;
    }

    /**
     * @return true if the load's producer lies within @p window
     * dynamic instructions before it (the unrealistic-OoO criterion:
     * such a load would always mis-speculate in a perfect continuous
     * window of that size).
     */
    bool
    producerWithin(SeqNum load_seq, uint32_t window) const
    {
        SeqNum p = producers[load_seq];
        return p != kNoSeq && load_seq - p < window;
    }

    /**
     * @return true if the load's producer is in a different (earlier)
     * task -- an inter-task dependence, the only kind Multiscalar
     * speculates on.
     */
    bool interTask(SeqNum load_seq) const;

    /** Dependence distance in tasks (0 when intra-task / no producer). */
    uint32_t taskDistance(SeqNum load_seq) const;

    /** All loads of the trace, in program order. */
    const std::vector<SeqNum> &loads() const { return loadSeqs; }

    /** All stores of the trace, in program order. */
    const std::vector<SeqNum> &stores() const { return storeSeqs; }

  private:
    TraceView trc;
    /** Indexed by sequence number; only meaningful at load positions. */
    std::vector<SeqNum> producers;
    std::vector<SeqNum> loadSeqs;
    std::vector<SeqNum> storeSeqs;
};

} // namespace mdp

#endif // MDP_TRACE_DEP_ORACLE_HH
