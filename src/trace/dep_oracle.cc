#include "trace/dep_oracle.hh"

#include <unordered_map>

namespace mdp
{

DepOracle::DepOracle(const TraceView &trace)
    : trc(trace), producers(trace.size(), kNoSeq)
{
    std::unordered_map<Addr, SeqNum> last_store;
    last_store.reserve(trace.size() / 8 + 16);
    for (SeqNum s = 0; s < trace.size(); ++s) {
        const MicroOp op = trace[s];
        if (op.isStore()) {
            last_store[op.addr] = s;
            storeSeqs.push_back(s);
        } else if (op.isLoad()) {
            auto it = last_store.find(op.addr);
            if (it != last_store.end())
                producers[s] = it->second;
            loadSeqs.push_back(s);
        }
    }
}

bool
DepOracle::interTask(SeqNum load_seq) const
{
    SeqNum p = producers[load_seq];
    return p != kNoSeq && trc[p].taskId != trc[load_seq].taskId;
}

uint32_t
DepOracle::taskDistance(SeqNum load_seq) const
{
    SeqNum p = producers[load_seq];
    if (p == kNoSeq)
        return 0;
    return trc[load_seq].taskId - trc[p].taskId;
}

} // namespace mdp
