#include "trace/dep_oracle.hh"

#include "base/flat_hash.hh"

namespace mdp
{

DepOracle::DepOracle(const TraceView &trace)
    : trc(trace), producers(trace.size(), kNoSeq)
{
    // last_store is a point-lookup map that is never iterated, so the
    // flat open-addressed table is safe.  Sized by the same
    // distinct-address heuristic the node-based map used; an exact
    // store count would need an extra pass over the trace that costs
    // more than the rehashes it avoids.
    FlatHashMap<Addr, SeqNum> last_store;
    last_store.reserve(trace.size() / 8 + 16);
    for (SeqNum s = 0; s < trace.size(); ++s) {
        const OpKind k = trace.kind(s);
        if (k == OpKind::Store) {
            last_store[trace.addr(s)] = s;
            storeSeqs.push_back(s);
        } else if (k == OpKind::Load) {
            if (const SeqNum *p = last_store.find(trace.addr(s)))
                producers[s] = *p;
            loadSeqs.push_back(s);
        }
    }
}

bool
DepOracle::interTask(SeqNum load_seq) const
{
    SeqNum p = producers[load_seq];
    return p != kNoSeq && trc.taskId(p) != trc.taskId(load_seq);
}

uint32_t
DepOracle::taskDistance(SeqNum load_seq) const
{
    SeqNum p = producers[load_seq];
    if (p == kNoSeq)
        return 0;
    return trc.taskId(load_seq) - trc.taskId(p);
}

} // namespace mdp
