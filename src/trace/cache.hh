/**
 * @file
 * Persistent, content-addressed trace-artifact cache.
 *
 * Every experiment is a pure function of the generated trace, yet by
 * default every process regenerates its workload traces from scratch.
 * The cache turns generation into a build-once artifact: entries are
 * columnar trace files (serialize.hh format v2) in a directory named
 * by MDP_TRACE_CACHE, keyed by a digest of everything that determines
 * the trace bytes (format version, workload name, scale, seed, and a
 * digest of the full generator profile), and loaded back zero-copy by
 * mmap'ing the file and wrapping it in a TraceView.
 *
 * Trust model: entries are an optimization, never an authority.
 * Corrupted, truncated or version-stale files fail their header or
 * checksum validation, are unlinked, and the trace is regenerated --
 * a damaged cache can cost time but can never poison results or crash
 * a run.  Writers stage to a temp file and atomically rename, so
 * concurrent populators of one key are safe (last rename wins; both
 * produce identical bytes).
 */

#ifndef MDP_TRACE_CACHE_HH
#define MDP_TRACE_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace mdp
{

/** Everything that determines the bytes of a generated trace. */
struct TraceCacheKey
{
    std::string workload;      ///< registered workload name
    double scale = 1.0;        ///< trace scale (MDP_SCALE hook)
    uint64_t seed = 0;         ///< generation seed
    uint64_t paramsDigest = 0; ///< profileDigest() of the generator
};

/** Content digest of a key (mixes in the trace-format version). */
uint64_t traceKeyDigest(const TraceCacheKey &key);

/**
 * A trace file mapped read-only into the address space.  Owns the
 * mapping; view() aliases it, so the MappedTrace must outlive every
 * consumer of the view.  Falls back to a heap read on platforms
 * without mmap -- the contract (validated, immutable trace bytes) is
 * identical, only the sharing is lost.
 */
class MappedTrace
{
  public:
    /**
     * Map and validate @p path (header sanity, size check, payload
     * checksum).  @return null and an @p error description on any
     * failure; a non-null result is fully validated.
     */
    static std::unique_ptr<MappedTrace> open(const std::string &path,
                                             std::string &error);

    ~MappedTrace();
    MappedTrace(const MappedTrace &) = delete;
    MappedTrace &operator=(const MappedTrace &) = delete;

    const TraceView &view() const { return traceView; }
    std::string_view name() const { return traceView.name(); }
    size_t fileBytes() const { return mapLen; }

  private:
    MappedTrace() = default;

    const std::byte *mapBase = nullptr; ///< mmap base (null: heap)
    size_t mapLen = 0;
    std::vector<std::byte> heap; ///< non-mmap fallback storage
    TraceView traceView;
};

/**
 * The cache directory.  Cheap value type: construct per use site, all
 * state lives on disk.  All operations are best-effort and non-fatal:
 * I/O failures degrade to cache misses (load) or skipped writes
 * (store), never into errors visible to the simulation.
 */
class TraceCache
{
  public:
    explicit TraceCache(std::string directory);

    const std::string &dir() const { return cacheDir; }

    /** Entry file path for @p key (inside dir(), ".mdpt" suffix). */
    std::string entryPath(const TraceCacheKey &key) const;

    /**
     * Look up @p key.  @return the validated mapping on a hit; null on
     * a miss.  Entries failing validation (corrupt, truncated, stale
     * format) are unlinked so the next store repopulates them.
     */
    std::unique_ptr<MappedTrace> load(const TraceCacheKey &key) const;

    /**
     * Write @p trace under @p key: staged to a ".tmp" sibling, then
     * atomically renamed.  Creates the cache directory if missing.
     * @return false when the entry could not be written (disk full,
     * permissions); the caller keeps its in-memory trace either way.
     */
    bool store(const TraceCacheKey &key, const TraceView &trace) const;

    /** Remove the entry for @p key.  @return true if one was deleted. */
    bool remove(const TraceCacheKey &key) const;

    /** Remove every entry (and stray temp files).  @return count. */
    size_t removeAll() const;

    /** One listed entry; ok=false carries the validation error. */
    struct Entry
    {
        std::string path;
        std::string workload; ///< trace name ("?" when unreadable)
        uint64_t ops = 0;
        uint64_t bytes = 0;
        bool ok = false;
        std::string error;
    };

    /**
     * Scan the directory.  @p deep additionally replays the full
     * container validation over each mapped trace (mdp_trace verify);
     * shallow scans still map and checksum every file.
     */
    std::vector<Entry> list(bool deep) const;

  private:
    std::string cacheDir;
};

/**
 * The process-wide cache configured by MDP_TRACE_CACHE (unset or
 * empty: caching off).  Re-reads the environment on every call so
 * tests and tools can repoint it.
 */
std::unique_ptr<TraceCache> traceCacheFromEnv();

/** Cumulative process-wide counters (tests, diagnostics). */
uint64_t traceCacheHits();
uint64_t traceCacheMisses();
uint64_t traceCacheStores();

} // namespace mdp

#endif // MDP_TRACE_CACHE_HH
