#include "trace/trace.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mdp
{

TraceView::TraceView(const Trace &trace)
    : count(trace.size()), viewName(trace.traceName())
{
    if (count == 0)
        return;
    const MicroOp *ops = trace.all().data();
    constexpr auto stride = static_cast<uint32_t>(sizeof(MicroOp));
    auto field = [](const void *p) {
        return Field{static_cast<const std::byte *>(p), stride};
    };
    fPc = field(&ops->pc);
    fAddr = field(&ops->addr);
    fTaskPc = field(&ops->taskPc);
    fSrc1 = field(&ops->src1);
    fSrc2 = field(&ops->src2);
    fTaskId = field(&ops->taskId);
    fKind = field(&ops->kind);
    fValueRepeats = field(&ops->valueRepeats);
}

TraceView
TraceView::columnar(size_t count, std::string_view trace_name,
                    const std::byte *pc, const std::byte *addr,
                    const std::byte *task_pc, const std::byte *src1,
                    const std::byte *src2, const std::byte *task_id,
                    const std::byte *kind,
                    const std::byte *value_repeats)
{
    TraceView v;
    v.count = count;
    v.viewName = trace_name;
    v.fPc = {pc, sizeof(Addr)};
    v.fAddr = {addr, sizeof(Addr)};
    v.fTaskPc = {task_pc, sizeof(Addr)};
    v.fSrc1 = {src1, sizeof(SeqNum)};
    v.fSrc2 = {src2, sizeof(SeqNum)};
    v.fTaskId = {task_id, sizeof(uint32_t)};
    v.fKind = {kind, sizeof(uint8_t)};
    v.fValueRepeats = {value_repeats, sizeof(uint8_t)};
    return v;
}

uint32_t
TraceView::numTasks() const
{
    if (count == 0)
        return 0;
    return at<uint32_t>(fTaskId, count - 1) + 1;
}

std::vector<SeqNum>
TraceView::taskBoundaries() const
{
    std::vector<SeqNum> bounds;
    uint32_t last = UINT32_MAX;
    for (SeqNum s = 0; s < count; ++s) {
        uint32_t task = at<uint32_t>(fTaskId, s);
        if (task != last) {
            bounds.push_back(s);
            last = task;
        }
    }
    bounds.push_back(static_cast<SeqNum>(count));
    return bounds;
}

TraceStats
TraceView::stats() const
{
    TraceStats st;
    st.numOps = count;
    for (SeqNum s = 0; s < count; ++s) {
        switch (static_cast<OpKind>(at<uint8_t>(fKind, s))) {
          case OpKind::Load:
            ++st.numLoads;
            break;
          case OpKind::Store:
            ++st.numStores;
            break;
          case OpKind::Branch:
            ++st.numBranches;
            break;
          default:
            break;
        }
    }
    st.numTasks = numTasks();
    if (st.numTasks > 0) {
        auto bounds = taskBoundaries();
        uint64_t max_size = 0;
        for (size_t i = 0; i + 1 < bounds.size(); ++i)
            max_size = std::max<uint64_t>(max_size,
                                          bounds[i + 1] - bounds[i]);
        st.maxTaskSize = max_size;
        st.avgTaskSize = static_cast<double>(st.numOps) /
                         static_cast<double>(st.numTasks);
    }
    return st;
}

std::string
TraceView::validate() const
{
    uint32_t last_task = 0;
    for (SeqNum s = 0; s < count; ++s) {
        const MicroOp op = (*this)[s];
        if (s == 0) {
            if (op.taskId != 0)
                return "first op must be in task 0";
            last_task = 0;
        } else if (op.taskId != last_task) {
            if (op.taskId != last_task + 1)
                return "task ids must be contiguous at seq " +
                       std::to_string(s);
            last_task = op.taskId;
        }
        if (op.src1 != kNoSeq && op.src1 >= s)
            return "src1 does not precede consumer at seq " +
                   std::to_string(s);
        if (op.src2 != kNoSeq && op.src2 >= s)
            return "src2 does not precede consumer at seq " +
                   std::to_string(s);
        if (op.isMemOp() && op.addr == 0)
            return "memory op with null address at seq " +
                   std::to_string(s);
    }
    return "";
}

} // namespace mdp
