#include "trace/trace.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mdp
{

uint32_t
Trace::numTasks() const
{
    return ops.empty() ? 0 : ops.back().taskId + 1;
}

std::vector<SeqNum>
Trace::taskBoundaries() const
{
    std::vector<SeqNum> bounds;
    uint32_t last = UINT32_MAX;
    for (SeqNum s = 0; s < ops.size(); ++s) {
        if (ops[s].taskId != last) {
            bounds.push_back(s);
            last = ops[s].taskId;
        }
    }
    bounds.push_back(static_cast<SeqNum>(ops.size()));
    return bounds;
}

TraceStats
Trace::stats() const
{
    TraceStats st;
    st.numOps = ops.size();
    for (const auto &op : ops) {
        if (op.isLoad())
            ++st.numLoads;
        else if (op.isStore())
            ++st.numStores;
        else if (op.kind == OpKind::Branch)
            ++st.numBranches;
    }
    st.numTasks = numTasks();
    if (st.numTasks > 0) {
        auto bounds = taskBoundaries();
        uint64_t max_size = 0;
        for (size_t i = 0; i + 1 < bounds.size(); ++i)
            max_size = std::max<uint64_t>(max_size,
                                          bounds[i + 1] - bounds[i]);
        st.maxTaskSize = max_size;
        st.avgTaskSize = static_cast<double>(st.numOps) /
                         static_cast<double>(st.numTasks);
    }
    return st;
}

std::string
Trace::validate() const
{
    uint32_t expect_task = 0;
    uint32_t last_task = 0;
    for (SeqNum s = 0; s < ops.size(); ++s) {
        const MicroOp &op = ops[s];
        if (s == 0) {
            if (op.taskId != 0)
                return "first op must be in task 0";
            last_task = 0;
        } else if (op.taskId != last_task) {
            if (op.taskId != last_task + 1)
                return "task ids must be contiguous at seq " +
                       std::to_string(s);
            last_task = op.taskId;
            ++expect_task;
        }
        if (op.src1 != kNoSeq && op.src1 >= s)
            return "src1 does not precede consumer at seq " +
                   std::to_string(s);
        if (op.src2 != kNoSeq && op.src2 >= s)
            return "src2 does not precede consumer at seq " +
                   std::to_string(s);
        if (op.isMemOp() && op.addr == 0)
            return "memory op with null address at seq " +
                   std::to_string(s);
    }
    return "";
}

} // namespace mdp
