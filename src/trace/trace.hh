/**
 * @file
 * Trace container, the zero-copy TraceView accessor, and summary
 * statistics.
 */

#ifndef MDP_TRACE_TRACE_HH
#define MDP_TRACE_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "trace/microop.hh"

namespace mdp
{

/**
 * Summary statistics of a trace, used for Table 1 and sanity checks.
 */
struct TraceStats
{
    uint64_t numOps = 0;
    uint64_t numLoads = 0;
    uint64_t numStores = 0;
    uint64_t numBranches = 0;
    uint64_t numTasks = 0;
    double avgTaskSize = 0.0;
    uint64_t maxTaskSize = 0;
};

class Trace;

/**
 * A non-owning, uniformly strided view of a dynamic instruction
 * stream.  This is the type every timing model consumes; it reads
 * either
 *
 *  - an in-memory Trace (array-of-structs: each field pointer starts
 *    inside MicroOp[0] and strides by sizeof(MicroOp)), or
 *  - an mmap'd columnar trace file (struct-of-arrays: each field
 *    pointer is the column base and strides by the field width),
 *
 * through the same branch-free (base + seq * stride) access, so cached
 * on-disk traces replay with zero deserialization.  The view borrows
 * its storage: the Trace or MappedTrace behind it must outlive it.
 */
class TraceView
{
  public:
    TraceView() = default;

    /** View an in-memory trace (implicit: models take TraceView). */
    TraceView(const Trace &trace); // NOLINT(google-explicit-constructor)

    /**
     * View columnar storage (the serialize.cc v2 layout).  Each
     * pointer is a packed column of `count` entries in field order;
     * @p trace_name must outlive the view (it aliases the mapped
     * file's name bytes).
     */
    static TraceView columnar(size_t count, std::string_view trace_name,
                              const std::byte *pc, const std::byte *addr,
                              const std::byte *task_pc,
                              const std::byte *src1,
                              const std::byte *src2,
                              const std::byte *task_id,
                              const std::byte *kind,
                              const std::byte *value_repeats);

    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    std::string_view name() const { return viewName; }

    /** Materialize one op (a gather of all fields at @p s). */
    MicroOp
    operator[](SeqNum s) const
    {
        MicroOp op;
        op.pc = at<Addr>(fPc, s);
        op.addr = at<Addr>(fAddr, s);
        op.taskPc = at<Addr>(fTaskPc, s);
        op.src1 = at<SeqNum>(fSrc1, s);
        op.src2 = at<SeqNum>(fSrc2, s);
        op.taskId = at<uint32_t>(fTaskId, s);
        op.kind = static_cast<OpKind>(at<uint8_t>(fKind, s));
        op.valueRepeats = at<uint8_t>(fValueRepeats, s) != 0;
        return op;
    }

    /**
     * Single-field accessors for hot loops.  The timing models' inner
     * loops usually need one or two fields of an op (a dependence
     * check reads src1/src2, a squash walk reads kind and addr); the
     * full operator[] gather of all eight fields is a measured hot
     * spot there, so these read exactly one column.
     */
    Addr pc(SeqNum s) const { return at<Addr>(fPc, s); }
    Addr addr(SeqNum s) const { return at<Addr>(fAddr, s); }
    Addr taskPc(SeqNum s) const { return at<Addr>(fTaskPc, s); }
    SeqNum src1(SeqNum s) const { return at<SeqNum>(fSrc1, s); }
    SeqNum src2(SeqNum s) const { return at<SeqNum>(fSrc2, s); }
    uint32_t taskId(SeqNum s) const { return at<uint32_t>(fTaskId, s); }
    OpKind
    kind(SeqNum s) const
    {
        return static_cast<OpKind>(at<uint8_t>(fKind, s));
    }
    bool
    valueRepeats(SeqNum s) const
    {
        return at<uint8_t>(fValueRepeats, s) != 0;
    }
    bool isLoad(SeqNum s) const { return kind(s) == OpKind::Load; }
    bool isStore(SeqNum s) const { return kind(s) == OpKind::Store; }
    bool isMemOp(SeqNum s) const { return isMem(kind(s)); }

    /** Number of tasks (max taskId + 1, or 0 for empty traces). */
    uint32_t numTasks() const;

    /** First sequence number of each task (ascending), plus end. */
    std::vector<SeqNum> taskBoundaries() const;

    /** Compute summary statistics. */
    TraceStats stats() const;

    /**
     * Check the stream invariants (contiguous tasks, producers precede
     * consumers, memory ops have addresses).
     * @return empty string when valid, else a description of the first
     *         violation found.
     */
    std::string validate() const;

  private:
    /** One field: column (or struct-member) base and element stride. */
    struct Field
    {
        const std::byte *base = nullptr;
        uint32_t stride = 0;
    };

    template <typename T>
    static T
    at(Field f, size_t i)
    {
        T v;
        std::memcpy(&v, f.base + i * size_t{f.stride}, sizeof(T));
        return v;
    }

    size_t count = 0;
    std::string_view viewName;
    Field fPc, fAddr, fTaskPc, fSrc1, fSrc2, fTaskId, fKind,
        fValueRepeats;
};

/**
 * A dynamic instruction stream in program order (owning container).
 *
 * Invariants (checked by validate()):
 *  - taskId values are non-decreasing and contiguous from 0;
 *  - every producer sequence number precedes its consumer;
 *  - memory ops have nonzero addresses.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string trace_name) : name(std::move(trace_name)) {}

    void reserve(size_t n) { ops.reserve(n); }

    /** Append an op; returns its sequence number. */
    SeqNum
    append(const MicroOp &op)
    {
        ops.push_back(op);
        return static_cast<SeqNum>(ops.size() - 1);
    }

    const MicroOp &operator[](SeqNum s) const { return ops[s]; }
    MicroOp &operator[](SeqNum s) { return ops[s]; }

    size_t size() const { return ops.size(); }
    bool empty() const { return ops.empty(); }

    const std::vector<MicroOp> &all() const { return ops; }
    const std::string &traceName() const { return name; }

    /** Number of tasks (max taskId + 1, or 0 for empty traces). */
    uint32_t numTasks() const { return TraceView(*this).numTasks(); }

    /** First sequence number of each task (ascending), plus end. */
    std::vector<SeqNum>
    taskBoundaries() const
    {
        return TraceView(*this).taskBoundaries();
    }

    /** Compute summary statistics. */
    TraceStats stats() const { return TraceView(*this).stats(); }

    /**
     * Check the container invariants.
     * @return empty string when valid, else a description of the first
     *         violation found.
     */
    std::string validate() const { return TraceView(*this).validate(); }

  private:
    std::string name;
    std::vector<MicroOp> ops;
};

} // namespace mdp

#endif // MDP_TRACE_TRACE_HH
