/**
 * @file
 * Trace container plus summary statistics.
 */

#ifndef MDP_TRACE_TRACE_HH
#define MDP_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/microop.hh"

namespace mdp
{

/**
 * Summary statistics of a trace, used for Table 1 and sanity checks.
 */
struct TraceStats
{
    uint64_t numOps = 0;
    uint64_t numLoads = 0;
    uint64_t numStores = 0;
    uint64_t numBranches = 0;
    uint64_t numTasks = 0;
    double avgTaskSize = 0.0;
    uint64_t maxTaskSize = 0;
};

/**
 * A dynamic instruction stream in program order.
 *
 * Invariants (checked by validate()):
 *  - taskId values are non-decreasing and contiguous from 0;
 *  - every producer sequence number precedes its consumer;
 *  - memory ops have nonzero addresses.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string trace_name) : name(std::move(trace_name)) {}

    void reserve(size_t n) { ops.reserve(n); }

    /** Append an op; returns its sequence number. */
    SeqNum
    append(const MicroOp &op)
    {
        ops.push_back(op);
        return static_cast<SeqNum>(ops.size() - 1);
    }

    const MicroOp &operator[](SeqNum s) const { return ops[s]; }
    MicroOp &operator[](SeqNum s) { return ops[s]; }

    size_t size() const { return ops.size(); }
    bool empty() const { return ops.empty(); }

    const std::vector<MicroOp> &all() const { return ops; }
    const std::string &traceName() const { return name; }

    /** Number of tasks (max taskId + 1, or 0 for empty traces). */
    uint32_t numTasks() const;

    /** First sequence number of each task (ascending), plus end. */
    std::vector<SeqNum> taskBoundaries() const;

    /** Compute summary statistics. */
    TraceStats stats() const;

    /**
     * Check the container invariants.
     * @return empty string when valid, else a description of the first
     *         violation found.
     */
    std::string validate() const;

  private:
    std::string name;
    std::vector<MicroOp> ops;
};

} // namespace mdp

#endif // MDP_TRACE_TRACE_HH
