/**
 * @file
 * Convenience builder used by the synthetic workload generators to emit
 * well-formed traces (contiguous tasks, valid producers, PC hygiene).
 */

#ifndef MDP_TRACE_BUILDER_HH
#define MDP_TRACE_BUILDER_HH

#include <string>

#include "base/logging.hh"
#include "trace/trace.hh"

namespace mdp
{

/**
 * Builds a Trace op by op.  Tracks the current task and provides typed
 * emitters; returns sequence numbers so generators can wire dataflow.
 */
class TraceBuilder
{
  public:
    explicit TraceBuilder(std::string name)
        : trace(std::move(name))
    {}

    /**
     * Open a new task.  Every op emitted until the next beginTask call
     * belongs to it.
     * @param task_pc PC of the first instruction of the task; this is
     *                what the ESYNC predictor records as path context.
     */
    void
    beginTask(Addr task_pc)
    {
        if (started)
            ++curTask;
        started = true;
        curTaskPc = task_pc;
    }

    /** Emit a non-memory op. */
    SeqNum
    op(OpKind kind, Addr pc, SeqNum src1 = kNoSeq, SeqNum src2 = kNoSeq)
    {
        return push(kind, pc, 0, src1, src2);
    }

    SeqNum
    alu(Addr pc, SeqNum src1 = kNoSeq, SeqNum src2 = kNoSeq)
    {
        return push(OpKind::IntAlu, pc, 0, src1, src2);
    }

    SeqNum
    branch(Addr pc, SeqNum src1 = kNoSeq)
    {
        return push(OpKind::Branch, pc, 0, src1, kNoSeq);
    }

    /**
     * Emit a load.  @p addr_src is the producer of the address (models
     * address-generation dependences); the load completes only after it.
     */
    SeqNum
    load(Addr pc, Addr addr, SeqNum addr_src = kNoSeq)
    {
        return push(OpKind::Load, pc, addr, addr_src, kNoSeq);
    }

    /**
     * Emit a store.  @p addr_src produces the address, @p data_src the
     * value being stored.
     */
    SeqNum
    store(Addr pc, Addr addr, SeqNum addr_src = kNoSeq,
          SeqNum data_src = kNoSeq)
    {
        return push(OpKind::Store, pc, addr, addr_src, data_src);
    }

    /** Number of ops emitted so far. */
    size_t size() const { return trace.size(); }

    /** Mutable access to the most recently emitted op (e.g. to tag
     *  value locality after the fact). */
    MicroOp &
    lastOp()
    {
        mdp_assert(trace.size() > 0, "lastOp on empty trace");
        return trace[static_cast<SeqNum>(trace.size() - 1)];
    }

    uint32_t currentTask() const { return curTask; }

    /** Finish and take the trace. */
    Trace take() { return std::move(trace); }

  private:
    SeqNum
    push(OpKind kind, Addr pc, Addr addr, SeqNum src1, SeqNum src2)
    {
        mdp_assert(started, "TraceBuilder: op emitted before beginTask");
        MicroOp op;
        op.kind = kind;
        op.pc = pc;
        op.addr = addr;
        op.src1 = src1;
        op.src2 = src2;
        op.taskId = curTask;
        op.taskPc = curTaskPc;
        return trace.append(op);
    }

    Trace trace;
    uint32_t curTask = 0;
    Addr curTaskPc = 0;
    bool started = false;
};

} // namespace mdp

#endif // MDP_TRACE_BUILDER_HH
