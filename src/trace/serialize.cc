#include "trace/serialize.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace mdp
{

namespace
{

constexpr char kMagic[8] = {'M', 'D', 'P', 'T', 'R', 'A', 'C', 'E'};
constexpr uint32_t kVersion = 1;

/**
 * On-disk record layout (little-endian, 40 bytes/op):
 *   u64 pc, u64 addr, u64 taskPc, u32 src1, u32 src2, u32 taskId,
 *   u8 kind, u8 valueRepeats, u16 pad
 */
struct PackedOp
{
    uint64_t pc;
    uint64_t addr;
    uint64_t taskPc;
    uint32_t src1;
    uint32_t src2;
    uint32_t taskId;
    uint8_t kind;
    uint8_t valueRepeats;
    uint16_t pad;
};
static_assert(sizeof(PackedOp) == 40, "unexpected record padding");

template <typename T>
void
put(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
get(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    return is.good();
}

} // namespace

bool
writeTrace(const Trace &trace, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    put(os, kVersion);

    uint32_t name_len = static_cast<uint32_t>(trace.traceName().size());
    put(os, name_len);
    os.write(trace.traceName().data(), name_len);

    uint64_t count = trace.size();
    put(os, count);

    for (SeqNum s = 0; s < trace.size(); ++s) {
        const MicroOp &op = trace[s];
        PackedOp p{};
        p.pc = op.pc;
        p.addr = op.addr;
        p.src1 = op.src1;
        p.src2 = op.src2;
        p.taskId = op.taskId;
        p.taskPc = op.taskPc;
        p.kind = static_cast<uint8_t>(op.kind);
        p.valueRepeats = op.valueRepeats ? 1 : 0;
        put(os, p);
    }
    return os.good();
}

bool
saveTrace(const Trace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    return os && writeTrace(trace, os);
}

Trace
readTrace(std::istream &is, std::string &error)
{
    error.clear();
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        error = "bad magic (not an mdp trace)";
        return Trace();
    }

    uint32_t version = 0;
    if (!get(is, version) || version != kVersion) {
        error = "unsupported trace version " + std::to_string(version);
        return Trace();
    }

    uint32_t name_len = 0;
    if (!get(is, name_len) || name_len > 4096) {
        error = "bad name length";
        return Trace();
    }
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);

    uint64_t count = 0;
    if (!get(is, count)) {
        error = "truncated header";
        return Trace();
    }

    Trace trace(name);
    trace.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        PackedOp p;
        if (!get(is, p)) {
            error = "truncated at op " + std::to_string(i);
            return Trace();
        }
        MicroOp op;
        op.pc = p.pc;
        op.addr = p.addr;
        op.src1 = p.src1;
        op.src2 = p.src2;
        op.taskId = p.taskId;
        op.taskPc = p.taskPc;
        op.kind = static_cast<OpKind>(p.kind);
        op.valueRepeats = p.valueRepeats != 0;
        trace.append(op);
    }

    std::string invalid = trace.validate();
    if (!invalid.empty()) {
        error = "loaded trace is invalid: " + invalid;
        return Trace();
    }
    return trace;
}

Trace
loadTrace(const std::string &path, std::string &error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        error = "cannot open " + path;
        return Trace();
    }
    return readTrace(is, error);
}

} // namespace mdp
