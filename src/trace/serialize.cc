#include "trace/serialize.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <vector>

#include "base/hash.hh"

namespace mdp
{

using trace_format::FileHeader;
using trace_format::Layout;

namespace
{

/** Serialize the payload (name + columns) of a trace into @p buf. */
std::vector<std::byte>
buildPayload(const TraceView &trace)
{
    const uint64_t n = trace.size();
    const std::string_view name = trace.name();
    const Layout l = trace_format::layoutFor(
        n, static_cast<uint32_t>(name.size()));

    std::vector<std::byte> buf(l.end); // zero-filled: padding is 0
    std::memcpy(buf.data() + l.name, name.data(), name.size());

    auto *pc = reinterpret_cast<Addr *>(buf.data() + l.pc);
    auto *addr = reinterpret_cast<Addr *>(buf.data() + l.addr);
    auto *task_pc = reinterpret_cast<Addr *>(buf.data() + l.taskPc);
    auto *src1 = reinterpret_cast<SeqNum *>(buf.data() + l.src1);
    auto *src2 = reinterpret_cast<SeqNum *>(buf.data() + l.src2);
    auto *task_id = reinterpret_cast<uint32_t *>(buf.data() + l.taskId);
    auto *kind = reinterpret_cast<uint8_t *>(buf.data() + l.kind);
    auto *repeats =
        reinterpret_cast<uint8_t *>(buf.data() + l.valueRepeats);

    for (SeqNum s = 0; s < n; ++s) {
        const MicroOp op = trace[s];
        pc[s] = op.pc;
        addr[s] = op.addr;
        task_pc[s] = op.taskPc;
        src1[s] = op.src1;
        src2[s] = op.src2;
        task_id[s] = op.taskId;
        kind[s] = static_cast<uint8_t>(op.kind);
        repeats[s] = op.valueRepeats ? 1 : 0;
    }
    return buf;
}

} // namespace

namespace trace_format
{

std::string
checkHeader(const FileHeader &header, uint64_t file_bytes)
{
    if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0)
        return "bad magic (not an mdp trace)";
    if (header.version != kVersion)
        return "unsupported trace version " +
               std::to_string(header.version);
    if (header.nameLen > 4096)
        return "bad name length";
    if (header.count > std::numeric_limits<SeqNum>::max())
        return "op count overflows sequence numbers";
    const Layout l = layoutFor(header.count, header.nameLen);
    if (header.payloadBytes != l.end)
        return "payload size does not match op count";
    if (file_bytes != 0 &&
        file_bytes != sizeof(FileHeader) + header.payloadBytes)
        return "file size does not match header (truncated?)";
    return "";
}

} // namespace trace_format

bool
writeTrace(const TraceView &trace, std::ostream &os)
{
    const std::vector<std::byte> payload = buildPayload(trace);

    FileHeader header{};
    std::memcpy(header.magic, trace_format::kMagic,
                sizeof(header.magic));
    header.version = trace_format::kVersion;
    header.nameLen = static_cast<uint32_t>(trace.name().size());
    header.count = trace.size();
    header.payloadBytes = payload.size();
    header.payloadChecksum =
        fnv1aBulk(payload.data(), payload.size());

    os.write(reinterpret_cast<const char *>(&header), sizeof(header));
    os.write(reinterpret_cast<const char *>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
    return os.good();
}

bool
saveTrace(const TraceView &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    return os && writeTrace(trace, os);
}

Trace
readTrace(std::istream &is, std::string &error)
{
    error.clear();
    FileHeader header{};
    is.read(reinterpret_cast<char *>(&header), sizeof(header));
    if (!is.good()) {
        error = "truncated header";
        return Trace();
    }
    error = trace_format::checkHeader(header, 0);
    if (!error.empty())
        return Trace();

    std::vector<std::byte> payload(header.payloadBytes);
    is.read(reinterpret_cast<char *>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
    if (static_cast<uint64_t>(is.gcount()) != header.payloadBytes) {
        error = "truncated payload";
        return Trace();
    }
    if (fnv1aBulk(payload.data(), payload.size()) !=
        header.payloadChecksum) {
        error = "payload checksum mismatch";
        return Trace();
    }

    const Layout l =
        trace_format::layoutFor(header.count, header.nameLen);
    std::string name(reinterpret_cast<const char *>(payload.data()),
                     header.nameLen);
    const TraceView view = TraceView::columnar(
        header.count, name, payload.data() + l.pc,
        payload.data() + l.addr, payload.data() + l.taskPc,
        payload.data() + l.src1, payload.data() + l.src2,
        payload.data() + l.taskId, payload.data() + l.kind,
        payload.data() + l.valueRepeats);

    Trace trace(name);
    trace.reserve(header.count);
    for (SeqNum s = 0; s < header.count; ++s)
        trace.append(view[s]);

    std::string invalid = trace.validate();
    if (!invalid.empty()) {
        error = "loaded trace is invalid: " + invalid;
        return Trace();
    }
    return trace;
}

Trace
loadTrace(const std::string &path, std::string &error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        error = "cannot open " + path;
        return Trace();
    }
    return readTrace(is, error);
}

} // namespace mdp
