/**
 * @file
 * Binary trace serialization.
 *
 * Generated traces are deterministic, but saving them lets external
 * tools (or future versions of the generators) exchange workloads, and
 * makes long-trace experiments restartable.  The format is a versioned
 * little-endian packed stream; see serialize.cc for the layout.
 */

#ifndef MDP_TRACE_SERIALIZE_HH
#define MDP_TRACE_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace mdp
{

/** Write a trace to a stream.  @return false on I/O failure. */
bool writeTrace(const Trace &trace, std::ostream &os);

/** Write a trace to a file.  @return false on I/O failure. */
bool saveTrace(const Trace &trace, const std::string &path);

/**
 * Read a trace from a stream.
 * @param error Receives a description when reading fails.
 * @return the trace, empty on failure (check @p error).
 */
Trace readTrace(std::istream &is, std::string &error);

/** Read a trace from a file. */
Trace loadTrace(const std::string &path, std::string &error);

} // namespace mdp

#endif // MDP_TRACE_SERIALIZE_HH
