/**
 * @file
 * Binary trace serialization: the columnar (SoA) trace-file format.
 *
 * Generated traces are deterministic, but saving them lets external
 * tools exchange workloads, makes long-trace experiments restartable,
 * and -- through the trace cache (trace/cache.hh) -- turns trace
 * generation into a build-once artifact.  Format v2 is columnar so a
 * file can be mmap'd and wrapped by a TraceView without any
 * deserialization: after a fixed little-endian header and the name
 * bytes, each MicroOp field is stored as one packed column, every
 * column 8-byte aligned.  A bulk FNV-1a checksum over the payload
 * (fnv1aBulk, base/hash.hh) detects corruption and truncation; readers
 * never trust a file.
 */

#ifndef MDP_TRACE_SERIALIZE_HH
#define MDP_TRACE_SERIALIZE_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace mdp
{

namespace trace_format
{

constexpr char kMagic[8] = {'M', 'D', 'P', 'T', 'R', 'A', 'C', 'E'};

/** Bump on any layout change; stale files are discarded, not read. */
constexpr uint32_t kVersion = 2;

/** Fixed file header (little-endian, followed by the payload). */
struct FileHeader
{
    char magic[8];
    uint32_t version;
    uint32_t nameLen;        ///< trace-name bytes (unpadded)
    uint64_t count;          ///< ops in the trace
    uint64_t payloadBytes;   ///< name + columns, as laid out below
    uint64_t payloadChecksum; ///< FNV-1a over the payload bytes
};
static_assert(sizeof(FileHeader) == 40, "unexpected header padding");

/** Round up to the 8-byte column alignment. */
constexpr uint64_t
pad8(uint64_t n)
{
    return (n + 7) & ~uint64_t{7};
}

/** Byte offsets of each region, relative to the payload start. */
struct Layout
{
    uint64_t name = 0;
    uint64_t pc = 0;
    uint64_t addr = 0;
    uint64_t taskPc = 0;
    uint64_t src1 = 0;
    uint64_t src2 = 0;
    uint64_t taskId = 0;
    uint64_t kind = 0;
    uint64_t valueRepeats = 0;
    uint64_t end = 0; ///< total payload size
};

/** Compute the column layout for a trace shape. */
constexpr Layout
layoutFor(uint64_t count, uint32_t name_len)
{
    Layout l;
    l.name = 0;
    l.pc = pad8(name_len);
    l.addr = l.pc + count * 8;
    l.taskPc = l.addr + count * 8;
    l.src1 = l.taskPc + count * 8;
    l.src2 = l.src1 + count * 4;
    l.taskId = l.src2 + count * 4;
    l.kind = l.taskId + count * 4;
    l.valueRepeats = l.kind + pad8(count);
    l.end = l.valueRepeats + pad8(count);
    return l;
}

/**
 * Validate a header against @p file_bytes (0 = unknown size, e.g.
 * streams).  @return empty string when plausible, else the reason.
 */
std::string checkHeader(const FileHeader &header, uint64_t file_bytes);

} // namespace trace_format

/** Write a trace to a stream.  @return false on I/O failure. */
bool writeTrace(const TraceView &trace, std::ostream &os);

/** Write a trace to a file.  @return false on I/O failure. */
bool saveTrace(const TraceView &trace, const std::string &path);

/**
 * Read a trace from a stream (checksum-verified copy into memory; for
 * the zero-copy path see MappedTrace in trace/cache.hh).
 * @param error Receives a description when reading fails.
 * @return the trace, empty on failure (check @p error).
 */
Trace readTrace(std::istream &is, std::string &error);

/** Read a trace from a file. */
Trace loadTrace(const std::string &path, std::string &error);

} // namespace mdp

#endif // MDP_TRACE_SERIALIZE_HH
