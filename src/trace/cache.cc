#include "trace/cache.hh"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "base/env.hh"
#include "base/hash.hh"
#include "trace/serialize.hh"

#if defined(__unix__) || defined(__APPLE__)
#define MDP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MDP_HAVE_MMAP 0
#endif

namespace fs = std::filesystem;

namespace mdp
{

namespace
{

std::atomic<uint64_t> gHits{0};
std::atomic<uint64_t> gMisses{0};
std::atomic<uint64_t> gStores{0};

/** Monotonic discriminator for concurrent staging files. */
std::atomic<uint64_t> gStageSeq{0};

/** Keep entry filenames portable: [A-Za-z0-9._-], rest become '_'. */
std::string
sanitizeName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            c = '_';
    }
    return out.empty() ? "trace" : out;
}

bool
isEntryFile(const fs::path &p)
{
    return p.extension() == ".mdpt";
}

bool
isStagingFile(const fs::path &p)
{
    return p.filename().string().find(".mdpt.tmp.") !=
           std::string::npos;
}

} // namespace

// ---------------------------------------------------------------------
// Key digest
// ---------------------------------------------------------------------

uint64_t
traceKeyDigest(const TraceCacheKey &key)
{
    Fnv1a h;
    h.value<uint32_t>(trace_format::kVersion);
    h.str(key.workload);
    h.value<double>(key.scale);
    h.value<uint64_t>(key.seed);
    h.value<uint64_t>(key.paramsDigest);
    return h.digest();
}

// ---------------------------------------------------------------------
// MappedTrace
// ---------------------------------------------------------------------

std::unique_ptr<MappedTrace>
MappedTrace::open(const std::string &path, std::string &error)
{
    error.clear();
    std::unique_ptr<MappedTrace> m(new MappedTrace());

#if MDP_HAVE_MMAP
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        error = "cannot open " + path;
        return nullptr;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        error = "cannot stat " + path;
        return nullptr;
    }
    const auto len = static_cast<size_t>(st.st_size);
    void *base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps the file alive
    if (base == MAP_FAILED) {
        error = "cannot mmap " + path;
        return nullptr;
    }
    m->mapBase = static_cast<const std::byte *>(base);
    m->mapLen = len;
#else
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is) {
        error = "cannot open " + path;
        return nullptr;
    }
    const auto len = static_cast<size_t>(is.tellg());
    is.seekg(0);
    m->heap.resize(len);
    is.read(reinterpret_cast<char *>(m->heap.data()),
            static_cast<std::streamsize>(len));
    if (!is.good()) {
        error = "cannot read " + path;
        return nullptr;
    }
    m->mapLen = len;
#endif

    const std::byte *base_ptr =
        m->mapBase ? m->mapBase : m->heap.data();

    if (m->mapLen < sizeof(trace_format::FileHeader)) {
        error = "file shorter than the header";
        return nullptr;
    }
    trace_format::FileHeader header{};
    std::memcpy(&header, base_ptr, sizeof(header));
    error = trace_format::checkHeader(header, m->mapLen);
    if (!error.empty())
        return nullptr;

    const std::byte *payload = base_ptr + sizeof(header);
    if (fnv1aBulk(payload, header.payloadBytes) !=
        header.payloadChecksum) {
        error = "payload checksum mismatch";
        return nullptr;
    }

    const trace_format::Layout l =
        trace_format::layoutFor(header.count, header.nameLen);
    const std::string_view name(
        reinterpret_cast<const char *>(payload + l.name),
        header.nameLen);
    m->traceView = TraceView::columnar(
        header.count, name, payload + l.pc, payload + l.addr,
        payload + l.taskPc, payload + l.src1, payload + l.src2,
        payload + l.taskId, payload + l.kind,
        payload + l.valueRepeats);
    return m;
}

MappedTrace::~MappedTrace()
{
#if MDP_HAVE_MMAP
    if (mapBase)
        ::munmap(const_cast<std::byte *>(mapBase), mapLen);
#endif
}

// ---------------------------------------------------------------------
// TraceCache
// ---------------------------------------------------------------------

TraceCache::TraceCache(std::string directory)
    : cacheDir(std::move(directory))
{}

std::string
TraceCache::entryPath(const TraceCacheKey &key) const
{
    return cacheDir + "/" + sanitizeName(key.workload) + "-" +
           hashHex(traceKeyDigest(key)) + ".mdpt";
}

std::unique_ptr<MappedTrace>
TraceCache::load(const TraceCacheKey &key) const
{
    const std::string path = entryPath(key);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        gMisses.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    std::string error;
    auto mapped = MappedTrace::open(path, error);
    if (!mapped) {
        // Corrupt, truncated or stale entry: discard so the following
        // store repopulates it.  Never fatal -- the caller regenerates.
        fs::remove(path, ec);
        gMisses.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    gHits.fetch_add(1, std::memory_order_relaxed);
    return mapped;
}

bool
TraceCache::store(const TraceCacheKey &key, const TraceView &trace) const
{
    std::error_code ec;
    fs::create_directories(cacheDir, ec);

    const std::string path = entryPath(key);
#if MDP_HAVE_MMAP
    // The pid only salts the temp-file name used for atomic
    // publication; the entry bytes themselves stay deterministic.
    // mdp-lint: allow(nondet-source): pid salts tmp-file name only.
    const uint64_t pid_salt = static_cast<uint64_t>(::getpid());
#else
    const uint64_t pid_salt = 0;
#endif
    const std::string tmp =
        path + ".tmp." + hashHex(traceKeyDigest(key) ^
                                 gStageSeq.fetch_add(1) ^ pid_salt);
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os || !writeTrace(trace, os))
            return false;
    }
    // Atomic publication: concurrent writers race benignly -- every
    // writer stages identical bytes, and rename replaces atomically.
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    gStores.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
TraceCache::remove(const TraceCacheKey &key) const
{
    std::error_code ec;
    return fs::remove(entryPath(key), ec);
}

size_t
TraceCache::removeAll() const
{
    std::error_code ec;
    size_t removed = 0;
    for (const auto &de : fs::directory_iterator(cacheDir, ec)) {
        const fs::path &p = de.path();
        if (!isEntryFile(p) && !isStagingFile(p))
            continue;
        std::error_code rm_ec;
        if (fs::remove(p, rm_ec))
            ++removed;
    }
    return removed;
}

std::vector<TraceCache::Entry>
TraceCache::list(bool deep) const
{
    std::vector<Entry> entries;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(cacheDir, ec)) {
        const fs::path &p = de.path();
        if (!isEntryFile(p))
            continue;
        Entry e;
        e.path = p.string();
        std::error_code sz_ec;
        e.bytes = fs::file_size(p, sz_ec);
        std::string error;
        auto mapped = MappedTrace::open(e.path, error);
        if (!mapped) {
            e.workload = "?";
            e.error = error;
        } else {
            e.workload = std::string(mapped->name());
            e.ops = mapped->view().size();
            e.ok = true;
            if (deep) {
                std::string invalid = mapped->view().validate();
                if (!invalid.empty()) {
                    e.ok = false;
                    e.error = "invalid trace: " + invalid;
                }
            }
        }
        entries.push_back(std::move(e));
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.path < b.path;
              });
    return entries;
}

// ---------------------------------------------------------------------
// Environment hookup and counters
// ---------------------------------------------------------------------

std::unique_ptr<TraceCache>
traceCacheFromEnv()
{
    std::string dir = envString("MDP_TRACE_CACHE", "");
    if (dir.empty())
        return nullptr;
    return std::make_unique<TraceCache>(std::move(dir));
}

uint64_t
traceCacheHits()
{
    return gHits.load(std::memory_order_relaxed);
}

uint64_t
traceCacheMisses()
{
    return gMisses.load(std::memory_order_relaxed);
}

uint64_t
traceCacheStores()
{
    return gStores.load(std::memory_order_relaxed);
}

} // namespace mdp
