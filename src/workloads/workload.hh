/**
 * @file
 * Synthetic workload: a named generator of dependence-rich traces.
 */

#ifndef MDP_WORKLOADS_WORKLOAD_HH
#define MDP_WORKLOADS_WORKLOAD_HH

#include "trace/cache.hh"
#include "trace/trace.hh"
#include "workloads/profile.hh"

namespace mdp
{

/**
 * A benchmark: a profile plus the generator that expands it into a
 * dynamic trace.  Deterministic: generate(scale, seed) is a pure
 * function of its arguments and the profile.
 */
class Workload
{
  public:
    explicit Workload(WorkloadProfile profile)
        : prof(std::move(profile))
    {}

    const WorkloadProfile &profile() const { return prof; }
    const std::string &name() const { return prof.name; }

    /**
     * Expand the profile into a trace.
     * @param scale multiplies the iteration count (MDP_SCALE hook).
     * @param seed_override nonzero replaces the profile seed.
     */
    Trace generate(double scale = 1.0, uint64_t seed_override = 0) const;

  private:
    WorkloadProfile prof;
};

/**
 * The trace-cache key of a generated workload at @p scale: shared by
 * the harness (WorkloadContext) and the mdp_trace tool so prebuilt
 * entries are exactly the ones runs look up.
 */
inline TraceCacheKey
workloadTraceKey(const Workload &w, double scale)
{
    return {w.name(), scale, w.profile().seed,
            profileDigest(w.profile())};
}

} // namespace mdp

#endif // MDP_WORKLOADS_WORKLOAD_HH
