/**
 * @file
 * Parameterization of the synthetic workloads.
 *
 * The paper's experiments depend on the *memory-dependence
 * phenomenology* of the SPEC programs, not on their computation.  A
 * WorkloadProfile captures exactly those properties: how many static
 * store-load edges exist, at what dependence distances they recur, how
 * often they are active, whether they occur only along particular
 * control paths, how late store addresses resolve, and how much
 * independent background traffic surrounds them.
 */

#ifndef MDP_WORKLOADS_PROFILE_HH
#define MDP_WORKLOADS_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mdp
{

/**
 * One family of recurring static store-load dependence edges.
 *
 * Each family contributes @c count static edges.  Edge k of the family
 * stores at iteration i and loads at iteration i + distance; the load
 * always executes, the store executes only when the iteration is on
 * the triggering control path (pathCount > 1) and passes the activity
 * gate.  This models both regular loop recurrences (espresso, the FP
 * codes) and path-dependent dependences (compress).
 */
struct RecurrenceSpec
{
    uint32_t count = 1;        ///< static edges in this family
    uint32_t distance = 1;     ///< dependence distance in iterations
    double activeProb = 1.0;   ///< store-emission probability on-path
    uint32_t pathCount = 1;    ///< control paths; store only on path 0
    bool sameAddress = true;   ///< scalar location vs per-iteration slot

    /** How path sensitivity manifests (meaningful when pathCount > 1). */
    enum class PathStyle
    {
        /** The store simply does not execute off-path; the load's true
         *  producer is then an older on-path iteration.  A counter
         *  predictor imposes waits that end in frontier releases. */
        GateStore,
        /** A *different static store* (distinct PC) writes the same
         *  location off-path.  The load then has multiple static
         *  dependences, exactly one active per dynamic instance --
         *  the case ESYNC's path check targets (section 5.5). */
        SplitPc,
    };
    PathStyle pathStyle = PathStyle::GateStore;

    /** Probability the load side is emitted each iteration (probe
     *  frequency; < 1 models rarely-covisited code like gcc's). */
    double loadProb = 1.0;

    /** Per-instance uniform jitter applied to the load/store positions
     *  (fraction of the task size).  This is what turns dependence
     *  violations into a *rate* rather than an all-or-nothing outcome,
     *  and what makes the rate grow with the stage count. */
    double positionJitter = 0.15;
    /** Extra address-computation chain length before the store's
     *  address resolves; long chains make selective speculation (WAIT)
     *  expensive because unrelated stores resolve late. */
    uint32_t storeAddrChain = 2;
    /** Position of the store inside its task: 0.0 = at the top,
     *  1.0 = at the very end.  Late stores raise the cost of both
     *  mis-speculation and frontier waits. */
    double storePosition = 0.8;
    /** Position of the load inside its (consuming) task. */
    double loadPosition = 0.15;

    /** Probability a store instance repeats the previous instance's
     *  value (value locality; consumed by the section-6 hybrid that
     *  value-predicts dependent loads instead of synchronizing). */
    double valueStability = 0.0;
};

/**
 * Full description of a synthetic benchmark.
 */
struct WorkloadProfile
{
    std::string name;
    std::string suite;   ///< "SPECint92", "SPECint95", "SPECfp95"
    std::string notes;

    uint64_t seed = 1;          ///< default generation seed
    uint32_t baseIterations = 20000; ///< loop trips at scale 1.0

    // --- task structure -------------------------------------------------
    uint32_t minTaskSize = 30;  ///< ops per task, lower bound
    uint32_t maxTaskSize = 60;  ///< ops per task, upper bound
    /** Probability a task is control-mispredicted by the sequencer. */
    double taskMispredictRate = 0.01;

    // --- instruction mix (fractions of background ops) ------------------
    double fracLoads = 0.22;
    double fracStores = 0.12;
    double fracBranches = 0.12;
    double fracFp = 0.0;
    double fracComplexInt = 0.02;

    // --- dependence structure -------------------------------------------
    std::vector<RecurrenceSpec> recurrences;

    /** Number of distinct control paths an iteration can take (drives
     *  task PCs and the recurrences' path gating). */
    uint32_t pathCount = 1;
    /** Probability that an iteration takes path 0 (the rest is split
     *  uniformly over the other paths). */
    double path0Bias = 0.5;

    // --- background memory behaviour ------------------------------------
    /** Hot shared scalars (globals / stack slots); background stores
     *  and loads touch these and create incidental cross-task
     *  dependences with power-law popularity. */
    uint32_t numGlobalScalars = 64;
    /** Fraction of background loads that touch the shared scalar pool
     *  (the rest stream privately and never conflict). */
    double sharedScalarFrac = 0.08;
    /** Background stores touch the scalar pool at sharedScalarFrac *
     *  scalarStoreScale (programs read shared state more than they
     *  write it; this also keeps incidental cross-task dependences a
     *  long-tail phenomenon rather than the dominant one). */
    double scalarStoreScale = 0.35;
    /** Exponent of the power-law over scalar popularity; higher means
     *  a heavier head (fewer static pairs dominate). */
    double scalarSkew = 3.0;
    /** Static PC pool size for background loads and stores; large
     *  pools (gcc) defeat small DDCs. */
    uint32_t staticPcPool = 400;
    /** Streaming array working set in bytes (drives cache misses). */
    uint32_t arrayWorkingSet = 1 << 14;
    /** Average address-chain length for background memory ops. */
    uint32_t addrChainLen = 2;
    /** Exponent biasing background stores toward the top of each task
     *  (0 = uniform; 2 = strongly early).  Early stores make frontier
     *  waits cheap. */
    double storeEarlyExp = 0.0;

    // --- intra-task spill pairs ------------------------------------------
    /** Average register-spill store/reload pairs per task.  These are
     *  short-distance *intra-task* dependences: invisible to the
     *  Multiscalar speculation (which never speculates within a task)
     *  but dominant at small windows in the unrealistic OoO model of
     *  section 5 -- they are why mis-speculations explode between
     *  window sizes 8 and 32. */
    double spillsPerTask = 1.0;
    /** Mean dynamic distance (in ops) between a spill and its reload. */
    double spillDistance = 12.0;
    /** Static PC pool for spill pairs (small: spills have excellent
     *  temporal locality). */
    uint32_t spillPcPool = 24;

    // --- misc -----------------------------------------------------------
    /** Tasks emitted per iteration (greedy task partitioning = 1). */
    uint32_t tasksPerIteration = 1;
};

/**
 * Content digest over every generation-relevant profile field (the
 * trace cache's key material): any change to a profile -- counts,
 * probabilities, recurrence families -- yields a different digest and
 * therefore a different cache entry, so stale traces can never be
 * served for an edited workload.  Documentation-only fields (notes)
 * are excluded.
 */
uint64_t profileDigest(const WorkloadProfile &profile);

} // namespace mdp

#endif // MDP_WORKLOADS_PROFILE_HH
