#include "workloads/suites.hh"

#include <map>
#include <memory>

#include "base/logging.hh"

namespace mdp
{

namespace
{

/** Shorthand for recurrence families. */
RecurrenceSpec
rec(uint32_t count, uint32_t distance, double active, uint32_t paths,
    bool same_addr, uint32_t chain, double store_pos, double load_pos,
    double jitter = 0.15, double load_prob = 1.0)
{
    RecurrenceSpec r;
    r.count = count;
    r.distance = distance;
    r.activeProb = active;
    r.pathCount = paths;
    r.sameAddress = same_addr;
    r.storeAddrChain = chain;
    r.storePosition = store_pos;
    r.loadPosition = load_pos;
    r.positionJitter = jitter;
    r.loadProb = load_prob;
    return r;
}

/** A SplitPc path-sensitive family: a different static store writes
 *  the location on the off paths. */
RecurrenceSpec
recSplit(uint32_t count, uint32_t distance, double active, uint32_t paths,
         bool same_addr, uint32_t chain, double store_pos,
         double load_pos, double jitter = 0.15)
{
    RecurrenceSpec r = rec(count, distance, active, paths, same_addr,
                           chain, store_pos, load_pos, jitter);
    r.pathStyle = RecurrenceSpec::PathStyle::SplitPc;
    return r;
}

// ---------------------------------------------------------------------
// SPECint92-like profiles (the paper's primary evaluation set)
// ---------------------------------------------------------------------

WorkloadProfile
compress92()
{
    WorkloadProfile p;
    p.name = "compress";
    p.suite = "SPECint92";
    p.notes = "path-dependent hash-table updates: the dependence exists "
              "only when the producing iteration takes the hit path, so "
              "a plain counter (SYNC) imposes false waits while the "
              "path-sensitive ESYNC predictor filters them";
    p.seed = 92001;
    p.baseIterations = 26000;
    p.minTaskSize = 28;
    p.maxTaskSize = 48;
    p.taskMispredictRate = 0.02;
    p.pathCount = 3;
    p.path0Bias = 0.45;
    p.recurrences = {
        recSplit(4, 1, 1.00, 3, true, 4, 0.15, 0.35, 0.20),
        rec(2, 1, 0.90, 3, true, 3, 0.25, 0.12, 0.12),
    };
    p.numGlobalScalars = 48;
    p.sharedScalarFrac = 0.02;
    p.scalarSkew = 3.5;
    p.staticPcPool = 150;
    p.spillsPerTask = 1.2;
    return p;
}

WorkloadProfile
espresso()
{
    WorkloadProfile p;
    p.name = "espresso";
    p.suite = "SPECint92";
    p.notes = "large (~100-op) tasks with simple pointer-mediated "
              "recurrences; mis-speculation is expensive, and even a "
              "counter predictor captures the important dependences";
    p.seed = 92002;
    p.baseIterations = 11000;
    p.minTaskSize = 85;
    p.maxTaskSize = 115;
    p.taskMispredictRate = 0.015;
    p.recurrences = {
        rec(2, 1, 0.95, 1, true, 4, 0.35, 0.30, 0.20),
        rec(1, 1, 0.90, 1, true, 3, 0.50, 0.35, 0.20),
    };
    p.numGlobalScalars = 40;
    p.sharedScalarFrac = 0.03;
    p.scalarSkew = 3.2;
    p.staticPcPool = 250;
    p.spillsPerTask = 1.0;
    return p;
}

WorkloadProfile
gcc92()
{
    WorkloadProfile p;
    p.name = "gcc";
    p.suite = "SPECint92";
    p.notes = "many irregular static dependences with relatively poor "
              "temporal locality; the dependence working set defeats "
              "small DDCs (a 1024-entry DDC still misses)";
    p.seed = 92003;
    p.baseIterations = 26000;
    p.minTaskSize = 30;
    p.maxTaskSize = 55;
    p.taskMispredictRate = 0.03;
    p.pathCount = 4;
    p.path0Bias = 0.40;
    p.recurrences = {
        rec(24, 1, 0.85, 1, true, 4, 0.45, 0.25, 0.20, 0.030),
        rec(20, 1, 0.30, 2, true, 4, 0.55, 0.20, 0.20, 0.030),
        rec(12, 2, 0.70, 1, false, 3, 0.50, 0.22, 0.20, 0.025),
    };
    p.numGlobalScalars = 1500;
    p.sharedScalarFrac = 0.08;
    p.scalarSkew = 2.2;
    p.staticPcPool = 2500;
    p.spillsPerTask = 1.4;
    return p;
}

WorkloadProfile
sc92()
{
    WorkloadProfile p;
    p.name = "sc";
    p.suite = "SPECint92";
    p.notes = "dependences spread across many late-resolving unrelated "
              "stores: waiting for address resolution (WAIT) costs more "
              "than an occasional squash, so selective speculation "
              "underperforms blind speculation";
    p.seed = 92004;
    p.baseIterations = 22000;
    p.minTaskSize = 35;
    p.maxTaskSize = 65;
    p.taskMispredictRate = 0.02;
    p.recurrences = {
        rec(1, 1, 0.45, 1, true, 8, 0.70, 0.15, 0.10, 0.8),
        rec(1, 2, 0.35, 1, false, 6, 0.70, 0.15, 0.10, 0.8),
        rec(1, 1, 0.15, 1, true, 8, 0.90, 0.08, 0.10),
        // Old, already-satisfied dependences: harmless to every policy
        // except WAIT, which (lacking synchronization) still forces
        // these loads to wait for the whole store frontier -- the
        // figure-1(d) pathology that makes selective speculation lose.
        rec(4, 3, 1.00, 1, true, 2, 0.05, 0.55, 0.05),
    };
    p.numGlobalScalars = 80;
    p.sharedScalarFrac = 0.04;
    p.scalarSkew = 3.0;
    p.staticPcPool = 300;
    p.spillsPerTask = 1.2;
    return p;
}

WorkloadProfile
xlisp92()
{
    WorkloadProfile p;
    p.name = "xlisp";
    p.suite = "SPECint92";
    p.notes = "small tasks (interpreter dispatch) with early-resolving "
              "stack/cons-cell recurrences; waiting is cheap, so WAIT "
              "performs close to ideal at small window sizes";
    p.seed = 92005;
    p.baseIterations = 40000;
    p.minTaskSize = 18;
    p.maxTaskSize = 36;
    p.taskMispredictRate = 0.02;
    p.recurrences = {
        rec(2, 1, 0.90, 1, true, 1, 0.30, 0.40, 0.20),
        rec(1, 2, 0.80, 1, true, 1, 0.35, 0.40, 0.20),
    };
    p.storeEarlyExp = 2.0;
    p.numGlobalScalars = 64;
    p.sharedScalarFrac = 0.025;
    p.scalarSkew = 3.6;
    p.staticPcPool = 200;
    p.spillsPerTask = 2.0;
    return p;
}

// ---------------------------------------------------------------------
// SPECint95-like profiles
// ---------------------------------------------------------------------

WorkloadProfile
go95()
{
    WorkloadProfile p;
    p.name = "099.go";
    p.suite = "SPECint95";
    p.notes = "irregular dependence patterns with poor temporal "
              "locality plus poor control prediction, which limits how "
              "much of the PSYNC potential the mechanism can capture";
    p.seed = 95001;
    p.baseIterations = 24000;
    p.minTaskSize = 35;
    p.maxTaskSize = 60;
    p.taskMispredictRate = 0.10;
    p.pathCount = 4;
    p.path0Bias = 0.35;
    p.recurrences = {
        rec(30, 1, 0.35, 4, true, 4, 0.45, 0.25, 0.20, 0.03),
        rec(20, 2, 0.30, 2, true, 4, 0.50, 0.22, 0.20, 0.03),
        rec(10, 1, 0.80, 1, false, 4, 0.40, 0.30, 0.20, 0.06),
    };
    p.numGlobalScalars = 800;
    p.sharedScalarFrac = 0.10;
    p.scalarSkew = 2.0;
    p.staticPcPool = 2000;
    p.spillsPerTask = 1.3;
    return p;
}

WorkloadProfile
m88ksim()
{
    WorkloadProfile p;
    p.name = "124.m88ksim";
    p.suite = "SPECint95";
    p.notes = "clean simulator main loop: few, regular, always-active "
              "recurrences; the mechanism performs comparably to ideal";
    p.seed = 95002;
    p.baseIterations = 22000;
    p.minTaskSize = 40;
    p.maxTaskSize = 60;
    p.taskMispredictRate = 0.01;
    p.recurrences = {
        rec(2, 1, 0.95, 1, true, 3, 0.30, 0.32, 0.15),
        rec(1, 1, 0.90, 1, true, 3, 0.45, 0.38, 0.15),
    };
    p.numGlobalScalars = 48;
    p.sharedScalarFrac = 0.08;
    p.scalarSkew = 3.4;
    p.staticPcPool = 220;
    return p;
}

WorkloadProfile
gcc95()
{
    WorkloadProfile p = gcc92();
    p.name = "126.gcc";
    p.suite = "SPECint95";
    p.seed = 95003;
    p.baseIterations = 28000;
    return p;
}

WorkloadProfile
compress95()
{
    WorkloadProfile p = compress92();
    p.name = "129.compress";
    p.suite = "SPECint95";
    p.seed = 95004;
    p.baseIterations = 28000;
    return p;
}

WorkloadProfile
li95()
{
    WorkloadProfile p = xlisp92();
    p.name = "130.li";
    p.suite = "SPECint95";
    p.seed = 95005;
    p.baseIterations = 42000;
    return p;
}

WorkloadProfile
ijpeg()
{
    WorkloadProfile p;
    p.name = "132.ijpeg";
    p.suite = "SPECint95";
    p.notes = "block-structured array code: moving recurrences plus a "
              "large streaming working set; the mechanism captures a "
              "significant but partial share of the ideal gain";
    p.seed = 95006;
    p.baseIterations = 14000;
    p.minTaskSize = 60;
    p.maxTaskSize = 90;
    p.taskMispredictRate = 0.01;
    p.recurrences = {
        rec(3, 1, 0.95, 1, false, 3, 0.38, 0.32, 0.18),
        rec(4, 1, 0.45, 2, false, 4, 0.50, 0.25, 0.20, 0.5),
    };
    p.numGlobalScalars = 32;
    p.sharedScalarFrac = 0.03;
    p.scalarSkew = 3.0;
    p.staticPcPool = 350;
    p.arrayWorkingSet = 1 << 19;
    return p;
}

WorkloadProfile
perl95()
{
    WorkloadProfile p;
    p.name = "134.perl";
    p.suite = "SPECint95";
    p.notes = "interpreter mixing regular recurrences with "
              "path-dependent ones; partial capture of the ideal gain";
    p.seed = 95007;
    p.baseIterations = 30000;
    p.minTaskSize = 25;
    p.maxTaskSize = 45;
    p.taskMispredictRate = 0.025;
    p.pathCount = 3;
    p.path0Bias = 0.5;
    p.recurrences = {
        rec(8, 1, 0.80, 1, true, 2, 0.38, 0.32, 0.18, 0.15),
        recSplit(2, 1, 1.00, 3, true, 3, 0.20, 0.35, 0.20),
        rec(6, 1, 0.35, 2, true, 4, 0.50, 0.20, 0.20, 0.12),
    };
    p.numGlobalScalars = 400;
    p.sharedScalarFrac = 0.10;
    p.scalarSkew = 2.6;
    p.staticPcPool = 900;
    p.spillsPerTask = 1.6;
    return p;
}

WorkloadProfile
vortex()
{
    WorkloadProfile p;
    p.name = "147.vortex";
    p.suite = "SPECint95";
    p.notes = "object database: many static edges with moderate "
              "locality; good but not ideal capture";
    p.seed = 95008;
    p.baseIterations = 22000;
    p.minTaskSize = 40;
    p.maxTaskSize = 65;
    p.taskMispredictRate = 0.02;
    p.recurrences = {
        rec(20, 1, 0.85, 1, true, 4, 0.40, 0.28, 0.18, 0.06),
        rec(10, 2, 0.55, 2, false, 4, 0.50, 0.22, 0.20, 0.05),
    };
    p.numGlobalScalars = 600;
    p.sharedScalarFrac = 0.10;
    p.scalarSkew = 2.4;
    p.staticPcPool = 1200;
    return p;
}

// ---------------------------------------------------------------------
// SPECfp95-like profiles
// ---------------------------------------------------------------------

/** Common FP baseline: loop nests, wide tasks, FP-heavy mix. */
WorkloadProfile
fpBase()
{
    WorkloadProfile p;
    p.suite = "SPECfp95";
    p.fracLoads = 0.26;
    p.fracStores = 0.14;
    p.fracBranches = 0.06;
    p.fracFp = 0.35;
    p.fracComplexInt = 0.01;
    p.taskMispredictRate = 0.004;
    p.numGlobalScalars = 24;
    p.sharedScalarFrac = 0.03;
    p.scalarSkew = 3.0;
    p.staticPcPool = 180;
    p.spillsPerTask = 0.6;
    return p;
}

WorkloadProfile
tomcatv()
{
    WorkloadProfile p = fpBase();
    p.name = "101.tomcatv";
    p.notes = "vectorizable mesh code with clean loop recurrences; the "
              "mechanism performs very close to ideal";
    p.seed = 95101;
    p.baseIterations = 6500;
    p.minTaskSize = 140;
    p.maxTaskSize = 200;
    p.recurrences = {
        rec(6, 1, 1.00, 1, false, 3, 0.38, 0.32, 0.14),
    };
    return p;
}

WorkloadProfile
swim()
{
    WorkloadProfile p = fpBase();
    p.name = "102.swim";
    p.notes = "memory/FU saturated stencil: almost no inter-task "
              "dependences, so no speculation policy matters much";
    p.seed = 95102;
    p.baseIterations = 7000;
    p.minTaskSize = 120;
    p.maxTaskSize = 180;
    p.recurrences = {
        rec(2, 1, 1.00, 1, false, 2, 0.45, 0.30, 0.20, 0.15),
    };
    p.arrayWorkingSet = 1 << 21;
    p.fracFp = 0.45;
    return p;
}

WorkloadProfile
su2cor()
{
    WorkloadProfile p = fpBase();
    p.name = "103.su2cor";
    p.notes = "huge (~700-op) tasks whose dependence working set "
              "exceeds a 64-entry prediction table";
    p.seed = 95103;
    p.baseIterations = 1400;
    p.minTaskSize = 600;
    p.maxTaskSize = 900;
    p.recurrences = {
        rec(24, 1, 1.00, 1, true, 4, 0.33, 0.45, 0.12),
        rec(96, 1, 1.00, 1, true, 4, 0.36, 0.44, 0.12, 0.15),
    };
    p.staticPcPool = 900;
    return p;
}

WorkloadProfile
hydro2d()
{
    WorkloadProfile p = swim();
    p.name = "104.hydro2d";
    p.notes = "saturated hydrodynamics stencil; little to gain from "
              "dependence speculation at this configuration";
    p.seed = 95104;
    return p;
}

WorkloadProfile
mgrid()
{
    WorkloadProfile p = swim();
    p.name = "107.mgrid";
    p.notes = "multigrid sweeps; effectively dependence-free across "
              "tasks";
    p.seed = 95105;
    p.recurrences = {
        rec(1, 1, 1.00, 1, false, 2, 0.45, 0.30, 0.20, 0.10),
    };
    return p;
}

WorkloadProfile
applu()
{
    WorkloadProfile p = fpBase();
    p.name = "110.applu";
    p.notes = "regular PDE solver recurrences; very close to ideal";
    p.seed = 95106;
    p.baseIterations = 5500;
    p.minTaskSize = 150;
    p.maxTaskSize = 220;
    p.recurrences = {
        rec(8, 1, 1.00, 1, true, 3, 0.38, 0.32, 0.12),
    };
    return p;
}

WorkloadProfile
turb3d()
{
    WorkloadProfile p = swim();
    p.name = "125.turb3d";
    p.notes = "FFT-style phases; saturated elsewhere, small gains";
    p.seed = 95107;
    return p;
}

WorkloadProfile
apsi()
{
    WorkloadProfile p = fpBase();
    p.name = "141.apsi";
    p.notes = "mixed-regularity recurrences; the mechanism removes "
              "dependences that would otherwise degrade performance, "
              "to a moderate extent";
    p.seed = 95108;
    p.baseIterations = 8000;
    p.minTaskSize = 100;
    p.maxTaskSize = 160;
    p.recurrences = {
        rec(8, 1, 1.00, 1, true, 4, 0.40, 0.30, 0.15),
        rec(4, 2, 1.00, 1, true, 4, 0.48, 0.26, 0.15, 0.6),
    };
    return p;
}

WorkloadProfile
fpppp()
{
    WorkloadProfile p = fpBase();
    p.name = "145.fpppp";
    p.notes = "~1000-op tasks (one loop iteration per task under greedy "
              "partitioning) with a dependence working set far beyond "
              "64 MDPT entries; some dependences cannot be synchronized";
    p.seed = 95109;
    p.baseIterations = 1100;
    p.minTaskSize = 800;
    p.maxTaskSize = 1200;
    p.recurrences = {
        rec(32, 1, 1.00, 1, true, 4, 0.33, 0.45, 0.12),
        rec(128, 1, 1.00, 1, true, 4, 0.36, 0.44, 0.12, 0.15),
    };
    p.staticPcPool = 1200;
    p.fracFp = 0.5;
    return p;
}

WorkloadProfile
wave5()
{
    WorkloadProfile p = fpBase();
    p.name = "146.wave5";
    p.notes = "particle/field code; moderate recurrence capture";
    p.seed = 95110;
    p.baseIterations = 7000;
    p.minTaskSize = 120;
    p.maxTaskSize = 200;
    p.recurrences = {
        rec(10, 1, 1.00, 1, true, 3, 0.40, 0.30, 0.15),
        rec(3, 3, 1.00, 1, false, 3, 0.42, 0.32, 0.15, 0.5),
    };
    return p;
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

const std::vector<Workload> &
registry()
{
    static const std::vector<Workload> all = [] {
        std::vector<Workload> v;
        // SPECint92
        v.emplace_back(compress92());
        v.emplace_back(espresso());
        v.emplace_back(gcc92());
        v.emplace_back(sc92());
        v.emplace_back(xlisp92());
        // SPECint95
        v.emplace_back(go95());
        v.emplace_back(m88ksim());
        v.emplace_back(gcc95());
        v.emplace_back(compress95());
        v.emplace_back(li95());
        v.emplace_back(ijpeg());
        v.emplace_back(perl95());
        v.emplace_back(vortex());
        // SPECfp95
        v.emplace_back(tomcatv());
        v.emplace_back(swim());
        v.emplace_back(su2cor());
        v.emplace_back(hydro2d());
        v.emplace_back(mgrid());
        v.emplace_back(applu());
        v.emplace_back(turb3d());
        v.emplace_back(apsi());
        v.emplace_back(fpppp());
        v.emplace_back(wave5());
        return v;
    }();
    return all;
}

std::vector<std::string>
suiteNames(const std::string &suite)
{
    std::vector<std::string> names;
    for (const auto &w : registry())
        if (w.profile().suite == suite)
            names.push_back(w.name());
    return names;
}

} // namespace

std::vector<std::string>
specInt92Names()
{
    return suiteNames("SPECint92");
}

std::vector<std::string>
specInt95Names()
{
    return suiteNames("SPECint95");
}

std::vector<std::string>
specFp95Names()
{
    return suiteNames("SPECfp95");
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const auto &w : registry())
        names.push_back(w.name());
    return names;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const auto &w : registry())
        if (w.name() == name)
            return w;
    mdp_fatal("unknown workload '%s'", name.c_str());
}

bool
hasWorkload(const std::string &name)
{
    for (const auto &w : registry())
        if (w.name() == name)
            return true;
    return false;
}

} // namespace mdp
