#include "workloads/manycore.hh"

#include <algorithm>
#include <vector>

#include "base/random.hh"
#include "trace/builder.hh"

namespace mdp
{

namespace
{

// Address-space layout: each generator carves disjoint regions so a
// dependence exists exactly where the kernel semantics say one does.
constexpr Addr kNodeBase = 0x10000000;     // per-node records
constexpr Addr kCursorBase = 0x20000000;   // shared frontier cursors
constexpr Addr kVecXBase = 0x30000000;     // SpMV x vector (read-only)
constexpr Addr kVecYBase = 0x40000000;     // SpMV y vector
constexpr Addr kStride = 64;               // one block per element

/** Clamp a scaled count to at least @p floor. */
uint32_t
scaled(double scale, uint32_t base, uint32_t floor_count)
{
    double v = base * scale;
    if (v < floor_count)
        return floor_count;
    return static_cast<uint32_t>(v);
}

} // namespace

Trace
makeBfsFrontierTrace(double scale, uint64_t seed, unsigned num_pes)
{
    Pcg32 rng(seed ^ 0xbf5bf5bf5ULL, 0x1);
    TraceBuilder b("bfs_frontier");

    const uint32_t levels = scaled(scale, 10, 3);
    // Frontier width breathes around the machine width: early levels
    // underfill (ramp-up), middle levels overfill (queueing).
    const uint32_t width = std::max(1u, num_pes);

    // Node records stored by the previous level: (seq, addr) pairs a
    // child can load from.
    std::vector<std::pair<SeqNum, Addr>> prev, cur;
    uint64_t next_node = 0;

    for (uint32_t lvl = 0; lvl < levels; ++lvl) {
        double fill = lvl == 0 ? 0.25 : (lvl % 3 == 2 ? 1.5 : 1.0);
        uint32_t tasks_here = std::max<uint32_t>(
            1, static_cast<uint32_t>(width * fill));
        cur.clear();
        for (uint32_t i = 0; i < tasks_here; ++i) {
            Addr tpc = 0x1000 + (lvl % 4) * 0x100;
            b.beginTask(tpc);

            // Load the parent's node record: a cross-task memory
            // dependence (same address as the parent's store) whose
            // address also arrives by register forwarding from the
            // parent (pointer chase), so the interconnect's routing
            // distance is on the critical path.
            SeqNum parent_store = kNoSeq;
            Addr parent_addr = kNodeBase;   // roots load a dummy slot
            if (!prev.empty()) {
                auto &[ps, pa] =
                    prev[rng.below(static_cast<uint32_t>(prev.size()))];
                parent_store = ps;
                parent_addr = pa;
            }
            SeqNum agen = b.alu(tpc + 0x04, parent_store);
            SeqNum visit = b.load(tpc + 0x08, parent_addr, agen);

            // Edge walk: a handful of neighbor inspections chained on
            // the visit load (register dataflow through the task).
            uint32_t degree = rng.range(1, 6);
            SeqNum acc = visit;
            for (uint32_t e = 0; e < degree; ++e) {
                Addr ea = kNodeBase + ((next_node * 7 + e * 131) %
                                       100000) * kStride;
                SeqNum nb = b.load(tpc + 0x0c, ea, acc);
                acc = b.alu(tpc + 0x10, acc, nb);
            }
            b.branch(tpc + 0x14, acc);

            // Store this node's record; children of the next level
            // load it.  The data source chains to the parent's store
            // via the visit load's register edge.
            Addr my_addr = kNodeBase + (next_node % 1000000) * kStride;
            ++next_node;
            SeqNum my_store = b.store(tpc + 0x18, my_addr, agen, acc);
            (void)parent_store;
            cur.emplace_back(my_store, my_addr);

            // A few tasks per level bump the shared next-frontier
            // cursor: same address across the level, genuine
            // store-load conflicts at short task distance.
            if (rng.chance(0.2)) {
                Addr cursor = kCursorBase + (lvl % 4) * kStride;
                SeqNum old = b.load(tpc + 0x1c, cursor);
                SeqNum inc = b.alu(tpc + 0x20, old);
                b.store(tpc + 0x24, cursor, kNoSeq, inc);
                b.lastOp().valueRepeats = false;
            }
        }
        std::swap(prev, cur);
    }
    return b.take();
}

Trace
makeSpmvRowSplitTrace(double scale, uint64_t seed, unsigned num_pes)
{
    Pcg32 rng(seed ^ 0x59a7e5ULL, 0x2);
    TraceBuilder b("spmv_rowsplit");

    const uint32_t blocks =
        std::max(1u, num_pes) * scaled(scale, 6, 2);
    std::vector<SeqNum> block_result(blocks, kNoSeq);

    for (uint32_t blk = 0; blk < blocks; ++blk) {
        Addr tpc = 0x2000;
        b.beginTask(tpc);

        // Skewed nonzero count: most row blocks are small, a few are
        // heavy (power-law-ish row degree).
        uint32_t nnz = rng.geometric(4.0);
        if (rng.chance(0.05))
            nnz += rng.range(8, 24);

        // Software-pipelined prologue: some blocks consume the
        // previous block's result register (distance-1 forward).
        SeqNum pipe = blk > 0 && rng.chance(0.3)
                          ? block_result[blk - 1]
                          : kNoSeq;
        SeqNum acc = b.alu(tpc + 0x04, pipe);
        for (uint32_t k = 0; k < nnz; ++k) {
            // x[col]: read-only gather, no producer (x precedes the
            // kernel), column pattern scrambled per block.
            Addr xa = kVecXBase +
                      ((static_cast<uint64_t>(blk) * 37 + k * 113) %
                       50000) * kStride;
            SeqNum xv = b.load(tpc + 0x08, xa);
            SeqNum prod = b.op(OpKind::FpMul, tpc + 0x0c, xv, acc);
            acc = b.op(OpKind::FpAdd, tpc + 0x10, acc, prod);
        }

        // Sparse reduction tail: some blocks fold in a neighbor
        // block's partial sum (short-distance cross-task memory
        // dependence through y).
        if (blk > 0 && rng.chance(0.15)) {
            uint32_t nb = blk - rng.range(
                1, std::min(blk, std::max(1u, num_pes / 8)));
            Addr ya = kVecYBase + static_cast<uint64_t>(nb) * kStride;
            // The y slot is a known address, so nothing in the
            // dataflow stops this load from issuing before the
            // neighbor's store: the dependence-speculation case.
            SeqNum yv = b.load(tpc + 0x14, ya, acc);
            acc = b.op(OpKind::FpAdd, tpc + 0x18, acc, yv);
        }

        Addr my_y = kVecYBase + static_cast<uint64_t>(blk) * kStride;
        block_result[blk] = b.store(tpc + 0x1c, my_y, kNoSeq, acc);
        b.lastOp().valueRepeats = rng.chance(0.3);
    }
    return b.take();
}

Trace
makeUtsTrace(double scale, uint64_t seed, unsigned num_pes)
{
    Pcg32 rng(seed ^ 0x075075ULL, 0x3);
    TraceBuilder b("uts_recursion");

    const uint32_t tasks =
        std::max(1u, num_pes) * scaled(scale, 4, 2);

    // Spawn-order parent links: task i's parent is a uniformly
    // earlier task within a fan-out horizon, like a work-stealing
    // deque unwinding an unbalanced tree.
    std::vector<std::pair<SeqNum, Addr>> node(tasks,
                                              {kNoSeq, kNodeBase});

    for (uint32_t i = 0; i < tasks; ++i) {
        Addr tpc = 0x3000 + (i % 3) * 0x100;
        b.beginTask(tpc);

        // Parent node descriptor.  Half the lookups chase a pointer
        // register-forwarded from the parent (dataflow-ordered); the
        // other half index a known slot, so the load can issue before
        // the parent's store and the dependence policies earn their
        // keep.
        SeqNum parent_store = kNoSeq;
        Addr parent_addr = kNodeBase;
        if (i > 0) {
            uint32_t horizon =
                std::min(i, std::max(1u, num_pes * 2));
            uint32_t parent = i - rng.range(1, horizon);
            parent_store = node[parent].first;
            parent_addr = node[parent].second;
        }
        SeqNum agen = rng.chance(0.5)
                          ? b.alu(tpc + 0x04, parent_store)
                          : b.alu(tpc + 0x04);
        SeqNum desc = b.load(tpc + 0x08, parent_addr, agen);

        // Geometric cascade of task sizes: a few huge subtrees -- the
        // stragglers that leave the rest of the machine idle -- and a
        // long tail of near-empty ones.
        uint32_t body = rng.geometric(3.0);
        if (rng.chance(0.04))
            body += rng.range(60, 200);
        SeqNum acc = desc;
        for (uint32_t k = 0; k < body; ++k) {
            if (k % 7 == 3)
                acc = b.op(OpKind::IntMul, tpc + 0x0c, acc);
            else
                acc = b.alu(tpc + 0x10, acc);
        }
        b.branch(tpc + 0x14, acc);

        Addr my_addr =
            kNodeBase + (static_cast<uint64_t>(i) + 1) * kStride;
        node[i] = {b.store(tpc + 0x18, my_addr, agen, acc), my_addr};
        b.lastOp().valueRepeats = rng.chance(0.5);
    }
    return b.take();
}

} // namespace mdp
