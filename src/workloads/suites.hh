/**
 * @file
 * Registry of the synthetic benchmark suites modelled after the
 * programs evaluated in the paper (SPECint92, SPECint95, SPECfp95).
 *
 * Each profile is tuned to reproduce the *dependence phenomenology*
 * the paper reports for the corresponding real program; see DESIGN.md
 * for the substitution argument and the per-benchmark notes fields for
 * what each profile encodes.
 */

#ifndef MDP_WORKLOADS_SUITES_HH
#define MDP_WORKLOADS_SUITES_HH

#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace mdp
{

/** Names of the five SPECint92-like workloads (the paper's core set). */
std::vector<std::string> specInt92Names();

/** Names of the eight SPECint95-like workloads. */
std::vector<std::string> specInt95Names();

/** Names of the ten SPECfp95-like workloads. */
std::vector<std::string> specFp95Names();

/** Every registered workload name. */
std::vector<std::string> allWorkloadNames();

/** Look up a workload by name; fatal on unknown names. */
const Workload &findWorkload(const std::string &name);

/** @return true if a workload with this name is registered. */
bool hasWorkload(const std::string &name);

} // namespace mdp

#endif // MDP_WORKLOADS_SUITES_HH
