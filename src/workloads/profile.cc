#include "workloads/profile.hh"

#include "base/hash.hh"

namespace mdp
{

namespace
{

void
mixRecurrence(Fnv1a &h, const RecurrenceSpec &r)
{
    h.value(r.count);
    h.value(r.distance);
    h.value(r.activeProb);
    h.value(r.pathCount);
    h.value<uint8_t>(r.sameAddress ? 1 : 0);
    h.value<uint32_t>(static_cast<uint32_t>(r.pathStyle));
    h.value(r.loadProb);
    h.value(r.positionJitter);
    h.value(r.storeAddrChain);
    h.value(r.storePosition);
    h.value(r.loadPosition);
    h.value(r.valueStability);
}

} // namespace

uint64_t
profileDigest(const WorkloadProfile &p)
{
    Fnv1a h;
    h.str(p.name);
    h.str(p.suite);
    h.value(p.seed);
    h.value(p.baseIterations);
    h.value(p.minTaskSize);
    h.value(p.maxTaskSize);
    h.value(p.taskMispredictRate);
    h.value(p.fracLoads);
    h.value(p.fracStores);
    h.value(p.fracBranches);
    h.value(p.fracFp);
    h.value(p.fracComplexInt);
    h.value<uint64_t>(p.recurrences.size());
    for (const RecurrenceSpec &r : p.recurrences)
        mixRecurrence(h, r);
    h.value(p.pathCount);
    h.value(p.path0Bias);
    h.value(p.numGlobalScalars);
    h.value(p.sharedScalarFrac);
    h.value(p.scalarStoreScale);
    h.value(p.scalarSkew);
    h.value(p.staticPcPool);
    h.value(p.arrayWorkingSet);
    h.value(p.addrChainLen);
    h.value(p.storeEarlyExp);
    h.value(p.spillsPerTask);
    h.value(p.spillDistance);
    h.value(p.spillPcPool);
    h.value(p.tasksPerIteration);
    return h.digest();
}

} // namespace mdp
