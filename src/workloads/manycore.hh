/**
 * @file
 * Manycore scale-out workloads: trace generators whose task graphs
 * exercise machines far wider than the paper's 4/8-stage Multiscalar
 * configurations.  Unlike the profile-driven SPEC stand-ins
 * (workloads/suites.hh), these are shaped by *parallel-kernel*
 * phenomenology -- frontier expansion, row-partitioned linear
 * algebra, unbalanced recursion -- where what matters is how task
 * width, dependence distance, and load imbalance interact with a
 * 1024-PE ring or mesh.
 *
 * All three generators are pure functions of (scale, seed, num_pes):
 * the trace for a given argument triple is byte-stable, so bench
 * output built on them is deterministic.  num_pes shapes the task
 * graph (frontier width, row-block count, fan-out) -- it is NOT
 * required to match the simulated machine's stage count, but the
 * scaling bench sweeps them together.
 */

#ifndef MDP_WORKLOADS_MANYCORE_HH
#define MDP_WORKLOADS_MANYCORE_HH

#include <cstdint>

#include "trace/trace.hh"

namespace mdp
{

/**
 * Level-synchronous BFS frontier expansion.  Each level is a band of
 * ~num_pes visit tasks; a visit loads the node record its (randomly
 * chosen) parent in the previous level stored, walks an edge list,
 * and stores its own record.  Cross-task dependences thus span up to
 * a full frontier width, and a shared next-frontier cursor gives a
 * small set of genuinely conflicting stores that the dependence
 * policies must cope with.
 */
Trace makeBfsFrontierTrace(double scale, uint64_t seed,
                           unsigned num_pes);

/**
 * Row-split SpMV (y = A*x).  One task per row block; rows draw a
 * skewed nonzero count, each nonzero is an x-vector load (read-only,
 * no producer) feeding an FP multiply-accumulate chain, and the row
 * result is stored to a per-row slot.  A sparse reduction tail makes
 * some tasks read a neighbor block's partial result, so the trace is
 * mostly embarrassingly parallel with occasional short-distance
 * memory dependences -- the frontier's best case (all PEs active).
 */
Trace makeSpmvRowSplitTrace(double scale, uint64_t seed,
                            unsigned num_pes);

/**
 * UTS-style unbalanced recursion.  Task sizes follow a geometric
 * cascade (a few huge subtrees, many tiny ones) and every task loads
 * the node record stored by its parent task at an arbitrary earlier
 * position in the spawn order.  The imbalance leaves most PEs idle
 * while stragglers run -- the case where per-PE event frontiers beat
 * the all-stage scan hardest.
 */
Trace makeUtsTrace(double scale, uint64_t seed, unsigned num_pes);

} // namespace mdp

#endif // MDP_WORKLOADS_MANYCORE_HH
