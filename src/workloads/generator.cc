/**
 * @file
 * Expansion of a WorkloadProfile into a dynamic trace.
 *
 * Address-space layout (all regions disjoint, so only the intended
 * dependence structure exists):
 *
 *   0x1000'0000  shared scalar pool (background cross-task deps)
 *   0x2000'0000  recurrence scalars (sameAddress edges)
 *   0x3000'0000  recurrence slot buffers (moving edges)
 *   0x4000'0000  private streaming loads
 *   0x4800'0000  private streaming stores
 *   0x6000'0000  spill slots (unique per task)
 *
 * Static-PC layout keeps load/store/other PCs in disjoint ranges so
 * static dependence edges are exactly the pairs the profile intends.
 */

#include "workloads/workload.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/random.hh"
#include "trace/builder.hh"

namespace mdp
{

namespace
{

constexpr Addr kScalarBase = 0x10000000;
constexpr Addr kRecScalarBase = 0x20000000;
constexpr Addr kRecBufBase = 0x30000000;
constexpr Addr kStreamLoadBase = 0x40000000;
constexpr Addr kStreamStoreBase = 0x48000000;
constexpr Addr kSpillBase = 0x60000000;

constexpr Addr kBgLoadPc = 0x100000;
constexpr Addr kBgStorePc = 0x200000;
constexpr Addr kScalarLoadPc = 0x300000;
constexpr Addr kScalarStorePc = 0x400000;
constexpr Addr kRecLoadPc = 0x500000;
constexpr Addr kRecStorePc = 0x600000;
constexpr Addr kAluPc = 0x700000;
constexpr Addr kSpillStorePc = 0x800000;
constexpr Addr kSpillLoadPc = 0x900000;
constexpr Addr kTaskPcBase = 0x4000000;

/** Number of per-edge slots for moving (sameAddress=false) edges; must
 *  exceed any plausible in-flight distance so slots never alias. */
constexpr uint32_t kRecBufSlots = 1024;

/** Power-law index draw: concentrated near zero for skew > 1. */
uint32_t
powerlaw(Pcg32 &rng, uint32_t n, double skew)
{
    if (n <= 1)
        return 0;
    double u = rng.uniform();
    auto idx = static_cast<uint32_t>(std::pow(u, skew) * n);
    return idx >= n ? n - 1 : idx;
}

/** A recurrence event scheduled at a position inside a task. */
struct RecEvent
{
    uint32_t position;
    uint32_t edge;        ///< global static-edge id
    uint32_t family;      ///< index into profile.recurrences
    uint8_t pcVariant;    ///< store-PC variant (SplitPc families)
    bool isStore;
};

/** Flattened static edge of a recurrence family. */
struct Edge
{
    uint32_t family;
    uint32_t indexInFamily;
};

} // namespace

Trace
Workload::generate(double scale, uint64_t seed_override) const
{
    const WorkloadProfile &p = prof;
    uint64_t seed = seed_override ? seed_override : p.seed;
    Pcg32 rng(seed, mix64(seed ^ 0x777));

    auto iters = static_cast<uint64_t>(
        std::max(1.0, p.baseIterations * scale));

    // Flatten recurrence families into globally numbered static edges.
    std::vector<Edge> edges;
    for (uint32_t f = 0; f < p.recurrences.size(); ++f)
        for (uint32_t k = 0; k < p.recurrences[f].count; ++k)
            edges.push_back({f, k});

    TraceBuilder builder(p.name);

    // Position-dependent weight for background stores: programs with
    // stack-discipline writes put their stores early in each task,
    // which makes waiting for the store frontier cheap (xlisp).  The
    // weight integrates to ~1 so the overall store fraction holds.
    auto storeWeight = [&p](uint32_t pos, uint32_t size) {
        if (p.storeEarlyExp <= 0.0 || size <= 1)
            return 1.0;
        double q = static_cast<double>(pos) / (size - 1);
        return (p.storeEarlyExp + 1.0) *
               std::pow(1.0 - q, p.storeEarlyExp);
    };

    // Dataflow context.
    SeqNum prev_induction = kNoSeq;

    const uint32_t path_count = std::max(1u, p.pathCount);

    for (uint64_t i = 0; i < iters; ++i) {
        // Control path taken by this iteration.
        uint32_t path = 0;
        if (path_count > 1 && !rng.chance(p.path0Bias))
            path = 1 + rng.below(path_count - 1);

        for (uint32_t t = 0; t < p.tasksPerIteration; ++t) {
            Addr task_pc = kTaskPcBase + path * 0x1000 + t * 0x100;
            builder.beginTask(task_pc);

            uint32_t size = rng.range(p.minTaskSize, p.maxTaskSize);

            // ----- schedule recurrence events into this task ---------
            std::vector<RecEvent> events;
            auto jittered = [&](double base, double jitter) {
                double pos = base + jitter * (2.0 * rng.uniform() - 1.0);
                pos = std::clamp(pos, 0.0, 1.0);
                return static_cast<uint32_t>(pos * (size - 1));
            };
            for (uint32_t e = 0; e < edges.size(); ++e) {
                if (e % p.tasksPerIteration != t)
                    continue;
                const RecurrenceSpec &r = p.recurrences[edges[e].family];

                // Load side: reads the value produced distance
                // iterations ago (only meaningful once warm).
                if (i >= r.distance && rng.chance(r.loadProb)) {
                    events.push_back(
                        {jittered(r.loadPosition, r.positionJitter), e,
                         edges[e].family, 0, false});
                }

                // Store side: path sensitivity either gates the store
                // or redirects it to an alternate static store PC.
                bool split = r.pathCount > 1 &&
                    r.pathStyle == RecurrenceSpec::PathStyle::SplitPc;
                bool on_path = split || r.pathCount <= 1 || path == 0;
                if (on_path && rng.chance(r.activeProb)) {
                    // Each control path uses its own static store
                    // instruction (hash-hit vs hash-miss update code).
                    uint8_t variant =
                        split ? static_cast<uint8_t>(path) : uint8_t{0};
                    events.push_back(
                        {jittered(r.storePosition, r.positionJitter), e,
                         edges[e].family, variant, true});
                }
            }
            std::stable_sort(events.begin(), events.end(),
                             [](const RecEvent &a, const RecEvent &b) {
                                 return a.position < b.position;
                             });

            // ----- schedule spill pairs ------------------------------
            // Stored as (position, matching-store-seq placeholder).
            struct Spill
            {
                uint32_t storePos;
                uint32_t loadPos;
                uint32_t slot;
                Addr addr;
                SeqNum storeSeq = kNoSeq;
            };
            std::vector<Spill> spills;
            {
                uint32_t n = 0;
                // Poisson-ish: expected spillsPerTask.
                double expect = p.spillsPerTask;
                while (expect >= 1.0) {
                    ++n;
                    expect -= 1.0;
                }
                if (rng.chance(expect))
                    ++n;
                for (uint32_t s2 = 0; s2 < n && size > 4; ++s2) {
                    uint32_t store_pos = rng.below(size - 3);
                    uint32_t dist = std::max<uint32_t>(
                        2, rng.geometric(p.spillDistance));
                    uint32_t load_pos =
                        std::min(size - 1, store_pos + dist);
                    uint32_t slot = rng.below(p.spillPcPool);
                    // Stack frames recycle (64 frames of 64 bytes), so
                    // spill traffic stays cache-resident; the reuse
                    // distance (64 tasks) is far outside any window,
                    // so no speculative dependences arise from it.
                    Addr addr = kSpillBase +
                        (builder.currentTask() % 64) * 64ull + s2 * 8;
                    spills.push_back({store_pos, load_pos, slot, addr});
                }
            }

            // ----- emit ----------------------------------------------
            size_t next_event = 0;
            SeqNum recent[16];
            uint32_t recent_n = 0;
            auto remember = [&](SeqNum s) {
                recent[recent_n % 16] = s;
                ++recent_n;
            };
            auto random_src = [&]() -> SeqNum {
                if (recent_n == 0 || !rng.chance(0.7))
                    return kNoSeq;
                uint32_t lim = std::min<uint32_t>(recent_n, 16);
                return recent[(recent_n - 1 - rng.below(lim)) % 16];
            };
            auto addr_src = [&](uint32_t chain) -> SeqNum {
                // Model address-generation depth: pick a recent op
                // roughly `chain` positions back.
                if (recent_n == 0)
                    return kNoSeq;
                uint32_t lim = std::min<uint32_t>(recent_n, 16);
                uint32_t back = std::min(lim - 1, chain);
                return recent[(recent_n - 1 - back) % 16];
            };

            for (uint32_t pos = 0; pos < size; ++pos) {
                // Recurrence events own their positions (all events
                // scheduled at this position are emitted).
                while (next_event < events.size() &&
                       events[next_event].position == pos) {
                    const RecEvent &ev = events[next_event++];
                    const RecurrenceSpec &r = p.recurrences[ev.family];
                    if (ev.isStore) {
                        // Dedicated address-computation chain.
                        SeqNum chain = random_src();
                        for (uint32_t c = 0; c < r.storeAddrChain; ++c) {
                            chain = builder.alu(
                                kAluPc + ev.edge * 8 + c, chain);
                        }
                        Addr a = r.sameAddress
                            ? kRecScalarBase + ev.edge * 64ull
                            : kRecBufBase + ev.edge * 0x100000ull +
                              (i % kRecBufSlots) * 8;
                        SeqNum s = builder.store(
                            kRecStorePc + ev.edge * 4 +
                                ev.pcVariant * 0x40000,
                            a, chain, random_src());
                        if (r.valueStability > 0.0)
                            builder.lastOp().valueRepeats =
                                rng.chance(r.valueStability);
                        remember(s);
                    } else {
                        uint64_t src_iter = i - r.distance;
                        Addr a = r.sameAddress
                            ? kRecScalarBase + ev.edge * 64ull
                            : kRecBufBase + ev.edge * 0x100000ull +
                              (src_iter % kRecBufSlots) * 8;
                        SeqNum s = builder.load(kRecLoadPc + ev.edge * 4,
                                                a, random_src());
                        remember(s);
                    }
                }

                bool spill_done = false;
                for (auto &sp : spills) {
                    if (sp.storePos == pos && sp.storeSeq == kNoSeq) {
                        sp.storeSeq = builder.store(
                            kSpillStorePc + sp.slot * 4, sp.addr,
                            random_src(), random_src());
                        remember(sp.storeSeq);
                        spill_done = true;
                        break;
                    }
                    if (sp.loadPos == pos && sp.storeSeq != kNoSeq &&
                        sp.loadPos != sp.storePos) {
                        SeqNum s = builder.load(
                            kSpillLoadPc + sp.slot * 4, sp.addr,
                            random_src());
                        remember(s);
                        sp.loadPos = UINT32_MAX; // consumed
                        spill_done = true;
                        break;
                    }
                }
                if (spill_done)
                    continue;

                // First op of a task: induction-variable update, a
                // register dependence carried over the ring.
                if (pos == 0) {
                    SeqNum s = builder.alu(kAluPc + 4096,
                                           prev_induction);
                    prev_induction = s;
                    remember(s);
                    continue;
                }

                // Background mix.
                double roll = rng.uniform();
                if (roll < p.fracLoads) {
                    bool shared = rng.chance(p.sharedScalarFrac);
                    Addr a;
                    Addr pc;
                    if (shared) {
                        uint32_t sc = powerlaw(rng, p.numGlobalScalars,
                                               p.scalarSkew);
                        a = kScalarBase + sc * 8ull;
                        pc = kScalarLoadPc + sc * 4;
                    } else {
                        a = kStreamLoadBase +
                            ((i * 64 + pos) * 8) % p.arrayWorkingSet;
                        pc = kBgLoadPc +
                             powerlaw(rng, p.staticPcPool, 1.5) * 4;
                    }
                    SeqNum s = builder.load(pc, a,
                                            addr_src(p.addrChainLen));
                    remember(s);
                } else if (roll < p.fracLoads +
                                  p.fracStores * storeWeight(pos, size)) {
                    bool shared = rng.chance(p.sharedScalarFrac *
                                             p.scalarStoreScale);
                    Addr a;
                    Addr pc;
                    if (shared) {
                        uint32_t sc = powerlaw(rng, p.numGlobalScalars,
                                               p.scalarSkew);
                        a = kScalarBase + sc * 8ull;
                        pc = kScalarStorePc + sc * 4;
                    } else {
                        a = kStreamStoreBase +
                            ((i * 64 + pos) * 8) % p.arrayWorkingSet;
                        pc = kBgStorePc +
                             powerlaw(rng, p.staticPcPool, 1.5) * 4;
                    }
                    SeqNum s = builder.store(pc, a,
                                             addr_src(p.addrChainLen),
                                             random_src());
                    remember(s);
                } else if (roll < p.fracLoads + p.fracStores +
                                  p.fracBranches) {
                    SeqNum s = builder.branch(
                        kAluPc + 8192 + rng.below(64) * 4, random_src());
                    remember(s);
                } else if (roll < p.fracLoads + p.fracStores +
                                  p.fracBranches + p.fracFp) {
                    double fp_roll = rng.uniform();
                    OpKind k = fp_roll < 0.5 ? OpKind::FpAdd
                             : fp_roll < 0.9 ? OpKind::FpMul
                                             : OpKind::FpDiv;
                    SeqNum s = builder.op(k,
                                          kAluPc + 12288 +
                                              rng.below(128) * 4,
                                          random_src(), random_src());
                    remember(s);
                } else if (roll < p.fracLoads + p.fracStores +
                                  p.fracBranches + p.fracFp +
                                  p.fracComplexInt) {
                    OpKind k = rng.chance(0.8) ? OpKind::IntMul
                                               : OpKind::IntDiv;
                    SeqNum s = builder.op(k,
                                          kAluPc + 16384 +
                                              rng.below(32) * 4,
                                          random_src(), random_src());
                    remember(s);
                } else {
                    SeqNum s = builder.alu(kAluPc + rng.below(256) * 4,
                                           random_src(), random_src());
                    remember(s);
                }
            }
        }
    }

    return builder.take();
}

} // namespace mdp
